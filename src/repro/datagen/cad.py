"""Synthetic Cold-Air-Drainage (CAD) transect data.

The paper evaluates SegDiff on a year of 5-minute air-temperature readings
from twenty-five sensors arranged in two parallel lines across a canyon at
James Reserve.  That dataset is proprietary, so this module synthesizes a
statistically comparable stand-in (see DESIGN.md §2):

* a seasonal annual cycle plus a diurnal cycle whose amplitude varies by
  sensor;
* slowly varying "weather front" structure shared by all sensors (AR(1)
  at an hourly scale);
* *CAD events*: sharp early-morning temperature drops of a few degrees
  over tens of minutes, strongest at the canyon bottom, followed by a cold
  pool that persists until sunrise — the very events biologists search for;
* per-sensor measurement noise and occasional anomalies (spikes) that the
  robust-smoothing preprocessing removes, mirroring the paper's pipeline.

Every generated event is recorded in an *event log* so tests can check
that a drop search actually recovers the injected events.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError
from .series import TimeSeries

__all__ = ["CADConfig", "CADEvent", "CADTransectGenerator", "generate_cad_day"]

DAY = 86_400.0
HOUR = 3_600.0


@dataclass(frozen=True)
class CADEvent:
    """One injected cold-air-drainage event (ground truth for tests)."""

    sensor: str
    t_onset: float
    t_bottom: float
    depth: float  # degrees Celsius, positive number (the drop magnitude)

    @property
    def duration(self) -> float:
        """Time from onset to the bottom of the drop."""
        return self.t_bottom - self.t_onset


@dataclass(frozen=True)
class CADConfig:
    """Knobs for the synthetic transect.

    Defaults mirror the paper's setting: 25 sensors, one reading every five
    minutes, drops ranging from a couple of degrees to tens of degrees at
    the canyon bottom.
    """

    n_sensors: int = 25
    sampling_interval: float = 300.0
    days: int = 7
    t0: float = 0.0
    seed: int = 20080325  # EDBT'08 opening day

    season_mean: float = 10.0
    season_amplitude: float = 8.0
    diurnal_amplitude: float = 7.0
    front_std: float = 2.0
    front_phi: float = 0.98
    noise_std: float = 0.15
    #: Sample-scale AR(1) micro-turbulence.  Unlike ``noise_std`` (white,
    #: removed by smoothing) this correlated roughness survives the robust
    #: smoother — it is what keeps segmentation compression rates in the
    #: paper's regime on real microclimate data.
    turbulence_std: float = 0.25
    turbulence_phi: float = 0.9

    event_probability: float = 0.55  # per sensor-night
    event_depth_min: float = 3.0
    event_depth_max: float = 12.0
    event_duration_min: float = 20.0 * 60.0
    event_duration_max: float = 60.0 * 60.0
    pool_hold_hours: float = 2.0

    anomaly_rate: float = 5e-4
    anomaly_magnitude: float = 10.0

    def __post_init__(self) -> None:
        if self.n_sensors < 1:
            raise InvalidParameterError("need at least one sensor")
        if self.sampling_interval <= 0:
            raise InvalidParameterError("sampling interval must be positive")
        if self.days < 1:
            raise InvalidParameterError("need at least one day of data")
        if not (0.0 <= self.event_probability <= 1.0):
            raise InvalidParameterError("event probability must be in [0, 1]")
        if self.event_depth_min <= 0 or self.event_depth_max < self.event_depth_min:
            raise InvalidParameterError("event depth range is invalid")
        if (
            self.event_duration_min <= 0
            or self.event_duration_max < self.event_duration_min
        ):
            raise InvalidParameterError("event duration range is invalid")


class CADTransectGenerator:
    """Generates per-sensor temperature series for a synthetic CAD transect.

    Sensors are laid out in two parallel lines across a canyon; each gets a
    *depth factor* in ``[0, 1]`` (1 at the canyon bottom).  Deeper sensors
    experience deeper, more frequent CAD drops — reproducing the paper's
    stated drop range of 0 to −35 °C across the transect.
    """

    def __init__(self, config: Optional[CADConfig] = None) -> None:
        self.config = config or CADConfig()
        self._events: List[CADEvent] = []

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    def sensor_names(self) -> List[str]:
        """Sensor labels, two lines: ``L0-00 .. L1-12``."""
        names = []
        for i in range(self.config.n_sensors):
            line = i % 2
            pos = i // 2
            names.append(f"L{line}-{pos:02d}")
        return names

    def depth_factor(self, sensor_index: int) -> float:
        """Canyon-depth factor in [0, 1]; mid-transect sensors are deepest."""
        n_per_line = (self.config.n_sensors + 1) // 2
        pos = sensor_index // 2
        if n_per_line == 1:
            return 1.0
        x = pos / (n_per_line - 1)  # 0 .. 1 across the canyon
        return float(math.sin(math.pi * x) ** 2)

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #

    def generate_all(self) -> Dict[str, TimeSeries]:
        """Generate every sensor's series; resets the event log first."""
        self._events = []
        out: Dict[str, TimeSeries] = {}
        for i, name in enumerate(self.sensor_names()):
            out[name] = self._generate_sensor(i, name)
        return out

    def generate(self, sensor_index: int = 0) -> TimeSeries:
        """Generate a single sensor's series (appends to the event log)."""
        if not (0 <= sensor_index < self.config.n_sensors):
            raise InvalidParameterError(
                f"sensor index {sensor_index} out of range"
            )
        name = self.sensor_names()[sensor_index]
        return self._generate_sensor(sensor_index, name)

    @property
    def events(self) -> List[CADEvent]:
        """Ground-truth log of injected events (most recent generation)."""
        return list(self._events)

    def _rng(self, *stream: int) -> np.random.Generator:
        return np.random.default_rng((self.config.seed, *stream))

    def _time_grid(self) -> np.ndarray:
        cfg = self.config
        n = int(round(cfg.days * DAY / cfg.sampling_interval))
        return cfg.t0 + cfg.sampling_interval * np.arange(n, dtype=float)

    def _shared_front(self, t: np.ndarray) -> np.ndarray:
        """Hourly AR(1) 'weather', shared by all sensors, interpolated."""
        cfg = self.config
        rng = self._rng(0xF0)
        hours = np.arange(
            t[0], t[-1] + HOUR, HOUR, dtype=float
        )
        innovations = rng.normal(
            0.0, cfg.front_std * math.sqrt(1 - cfg.front_phi**2), size=len(hours)
        )
        front = np.empty(len(hours))
        front[0] = rng.normal(0.0, cfg.front_std)
        for i in range(1, len(hours)):
            front[i] = cfg.front_phi * front[i - 1] + innovations[i]
        return np.interp(t, hours, front)

    def _generate_sensor(self, index: int, name: str) -> TimeSeries:
        cfg = self.config
        t = self._time_grid()
        depth = self.depth_factor(index)
        rng = self._rng(1, index)

        seasonal = cfg.season_mean + cfg.season_amplitude * np.sin(
            2.0 * np.pi * (t / (365.0 * DAY)) - np.pi / 2
        )
        diurnal_amp = cfg.diurnal_amplitude * (0.8 + 0.4 * rng.random())
        diurnal = diurnal_amp * np.sin(2.0 * np.pi * (t % DAY) / DAY - np.pi / 2)
        front = self._shared_front(t)
        noise = rng.normal(0.0, cfg.noise_std, size=len(t))

        v = seasonal + diurnal + front + noise + self._turbulence(len(t), rng)
        v += self._cad_pulses(t, depth, name, rng)
        v += self._anomalies(t, rng)
        return TimeSeries(t, v, name=name)

    def _turbulence(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample-scale AR(1) roughness (see :class:`CADConfig`)."""
        cfg = self.config
        if cfg.turbulence_std <= 0:
            return np.zeros(n)
        phi = cfg.turbulence_phi
        innovations = rng.normal(
            0.0, cfg.turbulence_std * math.sqrt(1.0 - phi * phi), size=n
        )
        turb = np.empty(n)
        turb[0] = rng.normal(0.0, cfg.turbulence_std)
        for i in range(1, n):
            turb[i] = phi * turb[i - 1] + innovations[i]
        return turb

    def _cad_pulses(
        self,
        t: np.ndarray,
        depth_factor: float,
        sensor: str,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Additive negative pulses: onset → rapid drop → cold pool → recovery."""
        cfg = self.config
        pulse = np.zeros_like(t)
        day0 = math.floor(t[0] / DAY)
        day1 = math.ceil(t[-1] / DAY)
        for day in range(day0, day1):
            prob = cfg.event_probability * (0.4 + 0.6 * depth_factor)
            if rng.random() > prob:
                continue
            onset = day * DAY + rng.uniform(2.0, 5.0) * HOUR
            duration = rng.uniform(cfg.event_duration_min, cfg.event_duration_max)
            depth = rng.uniform(cfg.event_depth_min, cfg.event_depth_max)
            depth *= 0.4 + 0.6 * depth_factor
            # rare extreme drainage at the canyon bottom — stretches the
            # drop range toward the paper's -35 degrees
            if depth_factor > 0.8 and rng.random() < 0.05:
                depth *= rng.uniform(2.0, 3.0)
            bottom = onset + duration
            hold_end = bottom + cfg.pool_hold_hours * HOUR * rng.uniform(0.5, 1.5)
            recover_end = hold_end + rng.uniform(0.5, 1.5) * HOUR

            if onset > t[-1] or recover_end < t[0]:
                continue
            # piecewise pulse profile: 0 at onset, -depth at bottom,
            # -depth until hold_end, back to 0 at recover_end
            falling = (t >= onset) & (t < bottom)
            pulse[falling] -= depth * (t[falling] - onset) / duration
            holding = (t >= bottom) & (t < hold_end)
            pulse[holding] -= depth
            recovering = (t >= hold_end) & (t < recover_end)
            pulse[recovering] -= depth * (
                1.0 - (t[recovering] - hold_end) / (recover_end - hold_end)
            )
            self._events.append(CADEvent(sensor, onset, bottom, depth))
        return pulse

    def _anomalies(self, t: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        spikes = np.zeros_like(t)
        if cfg.anomaly_rate <= 0:
            return spikes
        hit = rng.random(len(t)) < cfg.anomaly_rate
        signs = rng.choice([-1.0, 1.0], size=int(hit.sum()))
        spikes[hit] = signs * rng.uniform(
            0.5 * cfg.anomaly_magnitude, cfg.anomaly_magnitude, size=int(hit.sum())
        )
        return spikes


def generate_cad_day(
    seed: int = 7, sensor_index: int = 12, with_event: bool = True
) -> Tuple[TimeSeries, List[CADEvent]]:
    """Convenience: one day of one sensor, as in the paper's Figure 1.

    Returns the series and the ground-truth event log for that sensor.
    ``with_event=True`` retries seeds until the day contains at least one
    CAD event, so examples always have something to find.
    """
    attempt = seed
    for _ in range(64):
        cfg = CADConfig(days=1, seed=attempt, event_probability=0.9)
        gen = CADTransectGenerator(cfg)
        series = gen.generate(sensor_index)
        if gen.events or not with_event:
            return series, gen.events
        attempt += 1
    raise InvalidParameterError(
        "could not generate a day containing a CAD event; "
        "check the configuration"
    )

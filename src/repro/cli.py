"""Command-line interface: ``segdiff`` (or ``python -m repro``).

Subcommands:

* ``generate`` — write synthetic CAD data to CSV;
* ``smooth``   — apply the paper's robust-smoothing preprocessing;
* ``build``    — build a persistent SegDiff index (SQLite) from CSV;
* ``ingest``   — stream CSV into a live, time-partitioned index
  directory (resumable: replayed observations are skipped);
* ``compact``  — merge small sealed partitions of a live directory
  (and optionally run TTL retention);
* ``search``   — run a drop/jump search against a built index;
* ``explain``  — show the engine's chosen plan with estimated vs actual
  row counts (EXPLAIN ANALYZE for a search);
* ``stats``    — report a built index's sizes and composition;
* ``fsck``     — check a database file (MiniDB or SQLite) or a live
  partition directory (manifest, checksum trees, WAL) for corruption;
* ``shard-build`` — build a replicated, time-sharded index directory;
* ``verify``   — checksum anti-entropy: compare sealed/replica trees;
* ``repair``   — re-copy divergent ranges from a healthy peer;
* ``experiments`` — run the paper's evaluation tables.

Example session::

    segdiff generate --days 7 --out week.csv
    segdiff smooth week.csv --out smooth.csv
    segdiff build smooth.csv --epsilon 0.2 --window-hours 8 --index cad.idx
    segdiff search cad.idx --drop -3 --within-minutes 60
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from . import __version__
from .core.index import DEFAULT_BATCH_SIZE, SegDiffIndex
from .core.live import LiveIndex
from .datagen import (
    CADConfig,
    CADTransectGenerator,
    iter_series_csv,
    load_series_csv,
    robust_loess,
    save_series_csv,
)
from .errors import ReproError
from .storage import SqliteFeatureStore
from .storage.partitions import PartitionManifest

HOUR = 3600.0


def cmd_generate(args: argparse.Namespace) -> int:
    cfg = CADConfig(days=args.days, seed=args.seed, n_sensors=args.sensors)
    gen = CADTransectGenerator(cfg)
    series = gen.generate(args.sensor)
    save_series_csv(series, args.out)
    print(
        f"wrote {len(series)} observations ({args.days} days, sensor "
        f"{gen.sensor_names()[args.sensor]}) to {args.out}; "
        f"{len(gen.events)} CAD events injected"
    )
    return 0


def cmd_smooth(args: argparse.Namespace) -> int:
    series = load_series_csv(args.input)
    smoothed = robust_loess(series, span=args.span, iterations=args.iterations)
    save_series_csv(smoothed, args.out)
    print(f"smoothed {len(series)} observations -> {args.out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    window = args.window_hours * HOUR
    if args.resume:
        index = SegDiffIndex.resume(args.index)
        if index.epsilon != args.epsilon or index.window != window:
            print(
                f"note: resuming with checkpointed epsilon={index.epsilon}, "
                f"window={index.window / HOUR:.1f}h (flags ignored)",
                file=sys.stderr,
            )
    else:
        store = SqliteFeatureStore(args.index)
        index = SegDiffIndex(args.epsilon, window, store)
    if args.checkpoint_every > 0 or args.resume:
        # checkpointed/resumed builds stream observation-by-observation:
        # durability bookkeeping is per-observation, not per-batch
        if args.workers > 1:
            print(
                "note: --workers is ignored with --checkpoint-every/--resume",
                file=sys.stderr,
            )
        if args.checkpoint_every > 0:
            # iter_series_csv keeps memory bounded: at most one chunk of
            # the input file is materialized at a time
            i = 0
            for ts, vs in iter_series_csv(args.input):
                for t, v in zip(ts, vs):
                    index.append(float(t), float(v))
                    i += 1
                    if i % args.checkpoint_every == 0:
                        index.checkpoint()
        else:
            series = load_series_csv(args.input)
            if args.max_gap is not None:
                index.ingest_episodes(series, args.max_gap)
            else:
                index.ingest(series)
    else:
        series = load_series_csv(args.input)
        if args.workers > 1:
            index.ingest_parallel(
                series,
                max_gap=args.max_gap,
                workers=args.workers,
                batch_size=args.batch_size or DEFAULT_BATCH_SIZE,
            )
        elif args.batch_size == 0:
            # scalar reference path
            if args.max_gap is not None:
                index.ingest_episodes(series, args.max_gap)
            else:
                index.ingest(series)
        else:
            index.ingest_episodes_fast(
                series,
                max_gap=args.max_gap,
                batch_size=args.batch_size or DEFAULT_BATCH_SIZE,
            )
    index.finalize()
    stats = index.stats()
    print(
        f"built {args.index}: {stats.n_segments} segments over "
        f"{stats.n_observations} observations (r = "
        f"{stats.compression_rate:.2f}), {stats.store_counts.total} feature "
        f"rows, {stats.disk_bytes / 1024:.0f} KiB on disk"
    )
    index.close()
    if args.metrics_out:
        from .obs import write_jsonl

        n = write_jsonl(args.metrics_out)
        print(f"wrote {n} metric series to {args.metrics_out}")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    """Stream a CSV into a live, time-partitioned index directory."""
    window = args.window_hours * HOUR
    live = LiveIndex.open_or_create(
        args.epsilon,
        window,
        args.directory,
        backend=args.backend,
        seal_rows=args.seal_rows,
        seal_bytes=args.seal_bytes,
        seal_age=args.seal_age,
        ttl=args.ttl,
        auto_compact=args.auto_compact,
        wal=args.wal,
    )
    replayed = live.stats()["wal"]
    if replayed is not None and replayed["replayed_observations"]:
        print(
            f"replayed {replayed['replayed_observations']} observations "
            f"from {replayed['path']} (no source replay needed)"
        )
    n_before = live.n_observations
    try:
        for ts, vs in iter_series_csv(args.input, chunk_size=args.chunk_size):
            live.append_array(ts, vs)
        if args.finalize:
            live.finalize()
        else:
            # make everything segmented so far durable; the open
            # segmenter tail is replayed on the next ingest run
            live.seal()
        stats = live.stats()
        n_new = live.n_observations - n_before
        print(
            f"ingested {n_new} new observations into {args.directory} "
            f"(skipped replays up to watermark): "
            f"{stats['n_partitions']} sealed partitions, "
            f"{stats['sealed_rows']} feature rows, "
            f"generation {stats['generation']}"
            + (", finalized" if stats["finalized"] else "")
        )
    finally:
        live.close()
    if args.metrics_out:
        from .obs import write_jsonl

        n = write_jsonl(args.metrics_out)
        print(f"wrote {n} metric series to {args.metrics_out}")
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Merge small sealed partitions; optionally run TTL retention."""
    live = LiveIndex.open(args.directory)
    try:
        merges = live.compact(max_rows=args.max_rows, min_run=args.min_run)
        dropped: List[str] = []
        if args.ttl is not None:
            dropped = live.expire(ttl=args.ttl)
        stats = live.stats()
        msg = (
            f"{args.directory}: {merges} compaction merge(s), "
            f"{stats['n_partitions']} partitions remain "
            f"({stats['sealed_rows']} feature rows, "
            f"generation {stats['generation']})"
        )
        if args.ttl is not None:
            msg += f"; {len(dropped)} partition(s) expired"
        print(msg)
    finally:
        live.close()
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    chosen = sum(
        x is not None for x in (args.drop, args.jump, args.deepest)
    )
    if chosen != 1:
        print(
            "error: exactly one of --drop, --jump or --deepest is required",
            file=sys.stderr,
        )
        return 2
    t_threshold = args.within_minutes * 60.0
    if args.trace:
        from .obs import clear_traces, set_tracing_enabled

        set_tracing_enabled(True)
        clear_traces()
    resilience = None
    if (
        args.timeout_ms is not None
        or args.degrade is not None
        or args.max_concurrency is not None
    ):
        from .engine import ResiliencePolicy

        resilience = ResiliencePolicy(
            timeout_ms=args.timeout_ms,
            degrade=args.degrade,
            max_concurrency=args.max_concurrency,
        )
    index = SegDiffIndex.open(args.index, resilience=resilience)
    if args.deepest is not None:
        rc = _search_deepest(args, index, t_threshold)
        if args.trace:
            _print_traces()
        return rc
    try:
        if getattr(args, "explain", False):
            kind = "drop" if args.drop is not None else "jump"
            threshold = args.drop if args.drop is not None else args.jump
            report = index.explain_report(
                kind, t_threshold, threshold, mode=args.mode
            )
            print(report.render())
        # refinement runs inside the engine so the deadline covers it
        # (and degrade="candidates" can skip it near the deadline)
        series = load_series_csv(args.data) if args.data else None
        search_kw = dict(mode=args.mode, data=series,
                         verified_only=args.verified)
        if args.drop is not None:
            outcome = index.search_outcome(
                "drop", t_threshold, args.drop, **search_kw
            )
        else:
            outcome = index.search_outcome(
                "jump", t_threshold, args.jump, **search_kw
            )
        pairs = outcome.pairs
        print(
            f"{len(pairs)} matching periods (epsilon={index.epsilon}, "
            f"w={index.window / HOUR:.0f}h)"
        )
        if outcome.degraded:
            detail = (
                outcome.completeness.describe()
                if outcome.completeness is not None else "refine skipped"
            )
            print(f"note: DEGRADED result — {detail}; candidate pairs "
                  "have zero false negatives (Theorem 1)")
        if args.data and outcome.hits is not None:
            hits = outcome.hits
            if args.summary:
                from .core.reporting import render_summary, summarize_hits

                print(render_summary(summarize_hits(hits)))
                return 0
            for hit in hits[: args.limit]:
                w = hit.witness
                detail = (
                    f"deepest {w.dv:+.2f} over {w.dt / 60:.0f} min"
                    if w
                    else "no witness in data"
                )
                print(
                    f"  start in [{hit.pair.t_d:.0f}, {hit.pair.t_c:.0f}] "
                    f"end in [{hit.pair.t_b:.0f}, {hit.pair.t_a:.0f}]  ({detail})"
                )
        else:
            for pair in pairs[: args.limit]:
                print(
                    f"  start in [{pair.t_d:.0f}, {pair.t_c:.0f}] "
                    f"end in [{pair.t_b:.0f}, {pair.t_a:.0f}]"
                )
        if len(pairs) > args.limit:
            print(f"  ... and {len(pairs) - args.limit} more (use --limit)")
    finally:
        index.close()
    if args.trace:
        _print_traces()
    return 0


def _print_traces() -> None:
    from .obs import recent_traces, render_span_tree

    roots = recent_traces()
    if not roots:
        print("no traces recorded", file=sys.stderr)
        return
    print()
    print("trace:")
    for root in roots:
        print(render_span_tree(root))


def _search_deepest(args: argparse.Namespace, index, t_threshold: float) -> int:
    try:
        data = load_series_csv(args.data) if args.data else None
        hits = index.search_deepest_drops(
            args.deepest, t_threshold, data=data, mode=args.mode
        )
        print(
            f"{len(hits)} deepest drops within "
            f"{args.within_minutes:.0f} minutes"
        )
        for hit in hits:
            w = hit.witness
            print(
                f"  {w.dv:+.2f} over {w.dt / 60:.0f} min  "
                f"(start in [{hit.pair.t_d:.0f}, {hit.pair.t_c:.0f}], "
                f"end in [{hit.pair.t_b:.0f}, {hit.pair.t_a:.0f}])"
            )
    finally:
        index.close()
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """EXPLAIN ANALYZE: run the search, report the plan and row counts."""
    if (args.drop is None) == (args.jump is None):
        print(
            "error: exactly one of --drop or --jump is required",
            file=sys.stderr,
        )
        return 2
    kind = "drop" if args.drop is not None else "jump"
    threshold = args.drop if args.drop is not None else args.jump
    index = SegDiffIndex.open(args.index)
    try:
        report = index.explain_report(
            kind,
            args.within_minutes * 60.0,
            threshold,
            mode=args.mode,
            cache=args.cache,
        )
        print(report.render())
    finally:
        index.close()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    if args.index is None and not args.metrics:
        print(
            "error: give an index path and/or --metrics", file=sys.stderr
        )
        return 2
    if args.index is not None and PartitionManifest.exists(args.index):
        live = LiveIndex.open(args.index)
        try:
            s = live.stats()
            wm = s["watermark"]
            print(f"live index:  {args.index}")
            print(f"epsilon:     {s['epsilon']}")
            print(f"window:      {s['window'] / HOUR:.1f} hours")
            print(f"generation:  {s['generation']}"
                  + ("  (finalized)" if s["finalized"] else ""))
            print(f"watermark:   "
                  + (f"{wm:.3f}" if wm is not None else "(none)"))
            print(f"n:           {s['n_observations']} observations, "
                  f"{s['sealed_segments']} sealed segments")
            print(f"partitions:  {s['n_partitions']} sealed "
                  f"({s['sealed_rows']} feature rows), hot: "
                  f"{s['hot']['rows']} rows / "
                  f"{s['hot']['n_segments']} segments")
            for p in s["partitions"]:
                print(f"  {p['partition_id']}: "
                      f"t=[{p['t_min']:.3f}, {p['t_max']:.3f})  "
                      f"{p['rows']} rows, {p['n_segments']} segments")
        finally:
            live.close()
    elif args.index is not None:
        index = SegDiffIndex.open(args.index)
        try:
            stats = index.stats()
            counts = stats.store_counts
            print(f"index:    {args.index}")
            print(f"epsilon:  {index.epsilon}")
            print(f"window:   {index.window / HOUR:.1f} hours")
            print(f"n:        {stats.n_observations} observations, "
                  f"{stats.n_segments} segments "
                  f"(r = {stats.compression_rate:.2f})")
            print(f"rows:     {counts.total} "
                  f"(drop pts {counts.drop_points}, "
                  f"drop lines {counts.drop_lines}, "
                  f"jump pts {counts.jump_points}, "
                  f"jump lines {counts.jump_lines})")
            print(f"features: {stats.feature_bytes / 1024:.0f} KiB")
            print(f"indexes:  {stats.index_bytes / 1024:.0f} KiB")
        finally:
            index.close()
    if args.metrics:
        from .obs import render_table, to_jsonl, to_prometheus

        if args.index is not None:
            print()
        if args.metrics_format == "jsonl":
            print(to_jsonl())
        elif args.metrics_format == "prometheus":
            print(to_prometheus())
        else:
            print(render_table())
            breakers = _breaker_states()
            if breakers:
                print()
                print("circuit breakers:")
                for label, state in breakers:
                    print(f"  {label}: {state}")
    return 0


def cmd_debug(args: argparse.Namespace) -> int:
    """End-to-end query diagnostics: run one probe search with per-query
    tracing forced on, then print the linked trace tree, the resource
    accounting rollup, and the flight recorder's recent tail.

    ``--dump FILE`` additionally writes the whole recorder ring as JSONL,
    validated against ``benchmarks/recorder.schema.json`` (via its
    in-code twin) before anything touches disk.
    """
    from . import obs
    from .core.queries import DropQuery, JumpQuery
    from .obs.recorder import EVENT_SCHEMA

    if (args.drop is None) == (args.jump is None):
        print(
            "error: exactly one of --drop or --jump is required",
            file=sys.stderr,
        )
        return 2
    kind = "drop" if args.drop is not None else "jump"
    threshold = args.drop if args.drop is not None else args.jump
    t_threshold = args.within_minutes * 60.0

    # own the context here so the sessions underneath adopt it and leave
    # the retention decision (and the collected trace roots) to us
    ctx = obs.new_context(api="debug")
    if PartitionManifest.exists(args.index):
        query = (
            DropQuery(t_threshold, threshold) if kind == "drop"
            else JumpQuery(t_threshold, threshold)
        )
        live = LiveIndex.open(args.index)
        try:
            with live.snapshot() as snap, obs.use_context(ctx):
                result = snap.execute(query, mode=args.mode)
        finally:
            live.close()
        status, n_pairs = result.status.value, len(result.pairs)
    else:
        index = SegDiffIndex.open(args.index)
        try:
            with obs.use_context(ctx):
                outcome = index.search_outcome(
                    kind, t_threshold, threshold, mode=args.mode
                )
        finally:
            index.close()
        status, n_pairs = outcome.status.value, len(outcome.pairs)

    print(
        f"query {ctx.query_id}: kind={kind} T={t_threshold:g}s "
        f"V={threshold:g}  ->  {n_pairs} pairs, status={status}"
    )
    print()
    print("trace:")
    if ctx.trace_roots:
        for root in ctx.trace_roots:
            print(obs.render_span_tree(root))
    else:
        print("  (no spans recorded)")
    print()
    print(ctx.accounting.render())
    events = obs.RECORDER.tail(args.events)
    print()
    print(f"flight recorder ({len(events)} recent event(s)):")
    for ev in events:
        print(f"  {ev.render()}")

    if args.dump is not None:
        text = obs.RECORDER.to_jsonl()
        obs.validate_jsonl(text.splitlines(), EVENT_SCHEMA)
        with open(args.dump, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text)
                fh.write("\n")
        n_lines = 0 if not text else text.count("\n") + 1
        print()
        print(f"wrote {n_lines} validated event(s) to {args.dump}")
    return 0


def _breaker_states() -> List[tuple]:
    """Decode every registered ``repro_breaker_state`` gauge series."""
    from .obs.metrics import REGISTRY

    names = {0.0: "closed", 1.0: "half_open", 2.0: "open"}
    out = []
    for key, value in sorted(REGISTRY.snapshot().items()):
        if not key.startswith("repro_breaker_state"):
            continue
        labels = key[len("repro_breaker_state"):].strip("{}")
        out.append((labels or "(unlabelled)", names.get(value, f"?{value}")))
    return out


def _fsck_live_dir(directory: str) -> int:
    """Integrity-check a live partition directory: manifest, sealed
    partitions (against their persisted checksum trees), and WAL."""
    import os
    import re

    from .storage.checksum import diff_trees, load_trees, store_trees
    from .storage.livewal import LiveWAL, WAL_NAME
    from .storage.partitions import MANIFEST_NAME, PartitionManifest

    try:
        manifest = PartitionManifest.load(directory)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems: List[str] = []
    notes: List[str] = []
    referenced = set()
    for spec in manifest.partitions:
        if spec.file is None:
            problems.append(
                f"{spec.partition_id}: no backing file recorded"
            )
            continue
        referenced.add(spec.file)
        path = os.path.join(directory, spec.file)
        if not os.path.exists(path):
            problems.append(f"{spec.partition_id}: {spec.file} missing")
            continue
        try:
            from .core.index import SegDiffIndex

            store = SegDiffIndex._open_store(path)
        except Exception as exc:
            problems.append(f"{spec.partition_id}: unreadable ({exc})")
            continue
        try:
            trees = load_trees(store)
            if trees is None:
                notes.append(
                    f"{spec.partition_id}: no checksum trees "
                    "(sealed before WAL support); readability probed"
                )
                for table in (
                    "drop_points", "drop_lines",
                    "jump_points", "jump_lines",
                ):
                    store.read_table_rows(table)
            else:
                fresh = store_trees(store)
                for table, tree in trees.items():
                    ranges, _ = diff_trees(tree, fresh[table])
                    if ranges:
                        problems.append(
                            f"{spec.partition_id}: checksum mismatch "
                            f"in {table} ({len(ranges)} range(s))"
                        )
        except Exception as exc:
            problems.append(
                f"{spec.partition_id}: verification failed ({exc})"
            )
        finally:
            store.close()

    for fname in sorted(os.listdir(directory)):
        if fname in referenced or fname in (
            MANIFEST_NAME, WAL_NAME, "quarantine",
        ):
            continue
        if fname.endswith(".tmp") or re.match(
            r"^p\d+\.(sqlite|minidb)$", fname
        ):
            notes.append(f"{fname}: unreferenced (swept on next open)")

    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        try:
            scan = LiveWAL.scan(wal_path)
        except ReproError as exc:
            problems.append(f"{WAL_NAME}: {exc}")
        else:
            msg = (
                f"{WAL_NAME}: {scan['frames']} frame(s), "
                f"{scan['observations']} observation(s), "
                f"{scan['gaps']} gap(s)"
            )
            if scan["torn_bytes"]:
                msg += (
                    f", {scan['torn_bytes']} torn tail byte(s) "
                    "(truncated on next open)"
                )
            notes.append(msg)

    for n in notes:
        print(f"  note: {n}")
    if problems:
        print(f"{directory} (live): {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"{directory} (live): ok — {len(manifest.partitions)} "
        f"partition(s), generation {manifest.generation}"
    )
    return 0


def cmd_fsck(args: argparse.Namespace) -> int:
    """Integrity-check a database file or live partition directory."""
    import os

    if os.path.isdir(args.db):
        return _fsck_live_dir(args.db)
    try:
        with open(args.db, "rb") as fh:
            magic = fh.read(16)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if magic.startswith(b"SQLite format 3"):
        import sqlite3

        conn = sqlite3.connect(args.db)
        try:
            rows = conn.execute("PRAGMA integrity_check").fetchall()
            problems = [r[0] for r in rows if r[0] != "ok"]
        except sqlite3.DatabaseError as exc:
            problems = [str(exc)]
        finally:
            conn.close()
        kind = "sqlite"
    else:
        from .storage.minidb import MiniDatabase

        kind = "minidb"
        try:
            with MiniDatabase(args.db) as db:
                problems = [str(p) for p in db.check()]
        except ReproError as exc:
            problems = [str(exc)]

    if problems:
        print(f"{args.db} ({kind}): {len(problems)} problem(s)")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"{args.db} ({kind}): ok")
    return 0


def cmd_shard_build(args: argparse.Namespace) -> int:
    """Build a replicated, time-sharded index directory from CSV."""
    import os

    from .engine.sharding import ShardedIndex

    series = load_series_csv(args.input)
    os.makedirs(args.directory, exist_ok=True)
    sharded = ShardedIndex.build(
        series,
        epsilon=args.epsilon,
        window=args.window_hours * HOUR,
        n_shards=args.shards,
        max_gap=args.max_gap,
        replicas=args.replicas,
        backend="sqlite",
        directory=args.directory,
        leaf_size=args.leaf_size,
    )
    try:
        sharded.save_manifest(args.directory)
        stats = sharded.stats()
        total_rows = sum(s["rows"] for s in stats["shards"])
        print(
            f"built {args.directory}: {stats['n_shards']} shard(s) x "
            f"{args.replicas} replica(s), {total_rows} feature rows per "
            f"replica set, checksums sealed"
        )
        for shard in sharded.shards:
            spec = shard.spec
            print(
                f"  {spec.shard_id}: t in [{spec.t_min:.0f}, "
                f"{spec.t_max:.0f}], {len(shard.replicas)} replica(s)"
            )
    finally:
        sharded.close()
    return 0


def _open_for_verify(path: str):
    """A sharded directory (manifest.json) or a single sealed index."""
    import os

    from .engine.sharding import Shard, ShardSpec, ShardedIndex

    if os.path.isdir(path):
        return ShardedIndex.open(path)
    index = SegDiffIndex.open(path)
    if index.checksums() is None:
        index.close()
        raise ReproError(
            f"{path} has no sealed checksum trees; build it with "
            "shard-build, or call SegDiffIndex.seal_checksums() first"
        )
    spec = ShardSpec(shard_id=os.path.basename(path), t_min=0.0, t_max=0.0)
    return ShardedIndex([Shard(spec, [index])], index.epsilon, index.window)


def cmd_verify(args: argparse.Namespace) -> int:
    """Checksum anti-entropy check over a sharded index (or one index)."""
    sharded = _open_for_verify(args.path)
    try:
        report = sharded.verify(shard_id=args.shard)
        print(report.describe())
    finally:
        sharded.close()
    return 0 if report.clean else 1


def cmd_repair(args: argparse.Namespace) -> int:
    """Re-copy divergent ranges from a healthy peer, then re-verify."""
    sharded = _open_for_verify(args.path)
    try:
        before = sharded.verify(shard_id=args.shard)
        if before.clean:
            print("already clean; nothing to repair")
            return 0
        print(f"before: {before.describe()}")
        after = sharded.repair(before)
        print(f"after:  {after.describe()}")
    finally:
        sharded.close()
    return 0 if after.clean else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.__main__ import main as experiments_main

    return experiments_main(["--quick"] if args.quick else [])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="segdiff",
        description="SegDiff: searching for drops (and jumps) in sensor data",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--verbose", action="store_true",
        help="emit the library's structured log records (WAL replays, "
             "slow queries, ...) to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write synthetic CAD data to CSV")
    p.add_argument("--days", type=int, default=7)
    p.add_argument("--seed", type=int, default=20080325)
    p.add_argument("--sensors", type=int, default=25)
    p.add_argument("--sensor", type=int, default=12)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("smooth", help="robust-smooth a CSV series")
    p.add_argument("input")
    p.add_argument("--span", type=int, default=9)
    p.add_argument("--iterations", type=int, default=2)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_smooth)

    p = sub.add_parser("build", help="build a persistent SegDiff index")
    p.add_argument("input")
    p.add_argument("--epsilon", type=float, default=0.2)
    p.add_argument("--window-hours", type=float, default=8.0)
    p.add_argument("--index", required=True)
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="checkpoint the index every N observations so an "
                        "interrupted build can be resumed")
    p.add_argument("--resume", action="store_true",
                   help="continue a checkpointed build; already-ingested "
                        "observations in the input are skipped")
    p.add_argument("--batch-size", type=int, default=None, metavar="B",
                   help="observations per vectorized ingest round "
                        f"(default {DEFAULT_BATCH_SIZE}; 0 forces the "
                        "scalar reference path)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="fan episodes out across N processes (needs "
                        "--max-gap to split the series into episodes)")
    p.add_argument("--max-gap", type=float, default=None, metavar="SECONDS",
                   help="treat sampling gaps larger than this as episode "
                        "boundaries (no pairs across them)")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="dump the metrics registry as JSON lines after "
                        "the build")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser(
        "ingest",
        help="stream CSV into a live, time-partitioned index directory",
    )
    p.add_argument("input")
    p.add_argument("--directory", required=True,
                   help="partition directory (created on first run; later "
                        "runs resume at the watermark and skip replayed "
                        "observations)")
    p.add_argument("--epsilon", type=float, default=0.2)
    p.add_argument("--window-hours", type=float, default=8.0)
    p.add_argument("--backend", choices=["sqlite", "minidb"],
                   default="sqlite",
                   help="sealed-partition store format")
    p.add_argument("--seal-rows", type=int, default=50_000, metavar="N",
                   help="seal the hot partition once it holds N feature "
                        "rows")
    p.add_argument("--seal-bytes", type=int, default=None, metavar="BYTES",
                   help="also seal once the hot partition's estimated "
                        "in-memory footprint reaches this many bytes")
    p.add_argument("--seal-age", type=float, default=None, metavar="SECONDS",
                   help="also seal once the hot partition spans this much "
                        "time")
    p.add_argument("--wal", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="write-ahead log the hot partition (hot.wal) so a "
                        "crashed ingest resumes without re-reading the "
                        "source (--no-wal restores replay-from-watermark)")
    p.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                   help="retention: drop partitions ending more than TTL "
                        "seconds before the watermark")
    p.add_argument("--auto-compact", action="store_true",
                   help="merge small adjacent partitions after every seal")
    p.add_argument("--finalize", action="store_true",
                   help="seal the stream after ingesting (no further "
                        "appends; the segmenter tail is flushed)")
    p.add_argument("--chunk-size", type=int, default=65_536, metavar="N",
                   help="CSV rows per streamed chunk")
    p.add_argument("--metrics-out", metavar="FILE",
                   help="dump the metrics registry as JSON lines after "
                        "the run")
    p.set_defaults(func=cmd_ingest)

    p = sub.add_parser(
        "compact",
        help="merge small sealed partitions of a live index directory",
    )
    p.add_argument("directory")
    p.add_argument("--max-rows", type=int, default=None, metavar="N",
                   help="partitions at most this large are merge "
                        "candidates (default: the directory's seal "
                        "threshold)")
    p.add_argument("--min-run", type=int, default=2, metavar="K",
                   help="merge only runs of at least K adjacent small "
                        "partitions")
    p.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                   help="also drop partitions ending more than TTL "
                        "seconds before the watermark")
    p.set_defaults(func=cmd_compact)

    p = sub.add_parser("search", help="search a built index")
    p.add_argument("index")
    p.add_argument("--drop", type=float, help="drop threshold V < 0")
    p.add_argument("--jump", type=float, help="jump threshold V > 0")
    p.add_argument("--deepest", type=int, metavar="K",
                   help="report the K deepest drops (no threshold needed)")
    p.add_argument("--within-minutes", type=float, default=60.0)
    p.add_argument("--mode", choices=["index", "scan", "auto"],
                   default="index")
    p.add_argument("--data", help="original CSV for witness refinement")
    p.add_argument("--verified", action="store_true",
                   help="drop tolerance false positives (needs --data)")
    p.add_argument("--summary", action="store_true",
                   help="print an exploration summary instead of the hit "
                        "list (needs --data)")
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--explain", action="store_true",
                   help="print the engine's chosen plan with estimated vs "
                        "actual row counts before the results")
    p.add_argument("--trace", action="store_true",
                   help="record spans while searching and print the span "
                        "tree after the results")
    p.add_argument("--timeout-ms", type=float, metavar="MS",
                   help="per-query deadline; the search is cancelled "
                        "cooperatively and fails with a timeout once "
                        "exceeded")
    p.add_argument("--degrade", choices=["candidates"],
                   help="near the deadline, skip witness refinement and "
                        "return candidate pairs (zero false negatives "
                        "by Theorem 1) flagged DEGRADED")
    p.add_argument("--max-concurrency", type=int, metavar="N",
                   help="admission control: at most N queries in flight "
                        "on this session; excess load is shed")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "explain",
        help="show the plan a search executes, with est vs actual rows",
    )
    p.add_argument("index")
    p.add_argument("--drop", type=float, help="drop threshold V < 0")
    p.add_argument("--jump", type=float, help="jump threshold V > 0")
    p.add_argument("--within-minutes", type=float, default=60.0)
    p.add_argument("--mode", choices=["auto", "index", "scan"],
                   default="auto")
    p.add_argument("--cache", choices=["warm", "cold"], default="warm")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "stats",
        help="report a built index's composition and/or process metrics",
    )
    p.add_argument("index", nargs="?", default=None)
    p.add_argument("--metrics", action="store_true",
                   help="dump the process-local metrics registry")
    p.add_argument("--metrics-format",
                   choices=["table", "jsonl", "prometheus"],
                   default="table")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "debug",
        help="query diagnostics: trace tree, resource accounting, and "
             "the flight-recorder tail for one probe search",
    )
    p.add_argument("index", help="a built index file or live directory")
    p.add_argument("--drop", type=float, help="drop threshold V < 0")
    p.add_argument("--jump", type=float, help="jump threshold V > 0")
    p.add_argument("--within-minutes", type=float, default=60.0)
    p.add_argument("--mode", choices=["auto", "index", "scan"],
                   default="index")
    p.add_argument("--events", type=int, default=20, metavar="N",
                   help="flight-recorder events to print (default 20)")
    p.add_argument("--dump", metavar="FILE",
                   help="write the whole recorder ring to FILE as "
                        "schema-validated JSONL")
    p.set_defaults(func=cmd_debug)

    p = sub.add_parser(
        "fsck",
        help="check a database file or live partition directory for "
             "corruption",
    )
    p.add_argument("db", help="a MiniDB (.mdb) or SQLite file, or a "
                              "live index directory (manifest, sealed "
                              "partitions, hot.wal)")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser(
        "shard-build",
        help="build a replicated, time-sharded index directory",
    )
    p.add_argument("input")
    p.add_argument("--directory", required=True,
                   help="output directory (per-replica SQLite files plus "
                        "manifest.json)")
    p.add_argument("--epsilon", type=float, default=0.2)
    p.add_argument("--window-hours", type=float, default=8.0)
    p.add_argument("--shards", type=int, default=4, metavar="N",
                   help="target shard count; the series is split at "
                        "sampling-gap boundaries into at most N shards")
    p.add_argument("--replicas", type=int, default=1, metavar="R",
                   help="replicas per shard (failover + repair peers)")
    p.add_argument("--max-gap", type=float, required=True, metavar="SECONDS",
                   help="sampling gaps larger than this are episode "
                        "boundaries; shards split only there, so the "
                        "sharded answer equals a single index's")
    p.add_argument("--leaf-size", type=int, default=None, metavar="ROWS",
                   help="checksum-tree leaf size (rows per leaf)")
    p.set_defaults(func=cmd_shard_build)

    p = sub.add_parser(
        "verify",
        help="checksum anti-entropy check of a sharded index directory "
             "(or one sealed index file)",
    )
    p.add_argument("path")
    p.add_argument("--shard", default=None, help="check one shard only")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser(
        "repair",
        help="re-copy divergent row ranges from a healthy replica, "
             "then re-verify",
    )
    p.add_argument("path")
    p.add_argument("--shard", default=None, help="repair one shard only")
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("experiments", help="run the paper's evaluation")
    p.add_argument("--quick", action="store_true")
    p.set_defaults(func=cmd_experiments)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        logging.basicConfig(
            level=logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
            stream=sys.stderr,
        )
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""SegDiff — searching for drops (and jumps) in sensor data.

A faithful, production-quality reproduction of

    Gong Chen, Junghoo Cho, Mark H. Hansen.
    "On the brink: Searching for drops in sensor data."  EDBT 2008.

Quick start::

    from repro import SegDiffIndex, generate_cad_day

    series, truth = generate_cad_day()
    index = SegDiffIndex.build(series, epsilon=0.2, window=8 * 3600)
    pairs = index.search_drops(t_threshold=3600, v_threshold=-3.0)

See README.md for the architecture overview, DESIGN.md for the paper
mapping, and EXPERIMENTS.md for reproduction results.
"""

from .errors import (
    CircuitOpenError,
    InvalidParameterError,
    InvalidSegmentError,
    InvalidSeriesError,
    QueryCancelled,
    QueryError,
    QueryRejected,
    QueryTimeout,
    ReproError,
    ResilienceError,
    StorageError,
)
from .types import DataSegment, Event, Observation, SegmentPair
from .datagen import (
    CADConfig,
    CADTransectGenerator,
    PiecewiseLinearSignal,
    TimeSeries,
    generate_cad_day,
    iter_series_csv,
    load_series_csv,
    robust_loess,
    save_series_csv,
)
from .segmentation import (
    BottomUpSegmenter,
    SlidingWindowSegmenter,
    SWABSegmenter,
    compression_rate,
    segment_series,
)
from .core import (
    CorroboratedEvent,
    FeatureExtractor,
    LiveIndex,
    LiveSnapshot,
    LiveTieredIndex,
    Parallelogram,
    QueryPlanner,
    QueryRegion,
    SearchHit,
    SegDiffIndex,
    TieredIndex,
    TransectIndex,
    audit_completeness,
    audit_soundness,
    collect_features,
    render_summary,
    summarize_hits,
    witness_event,
)
from .core.queries import DropQuery, JumpQuery
from .engine import (
    CostModel,
    ExplainReport,
    QueryPlan,
    QuerySession,
    build_plan,
)
from .storage import MemoryFeatureStore, SqliteFeatureStore
from .baselines import ExhIndex, NaiveScan

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "InvalidSeriesError",
    "InvalidParameterError",
    "InvalidSegmentError",
    "StorageError",
    "QueryError",
    "ResilienceError",
    "QueryTimeout",
    "QueryCancelled",
    "QueryRejected",
    "CircuitOpenError",
    "Observation",
    "DataSegment",
    "Event",
    "SegmentPair",
    "TimeSeries",
    "PiecewiseLinearSignal",
    "CADConfig",
    "CADTransectGenerator",
    "generate_cad_day",
    "robust_loess",
    "iter_series_csv",
    "load_series_csv",
    "save_series_csv",
    "SlidingWindowSegmenter",
    "BottomUpSegmenter",
    "SWABSegmenter",
    "segment_series",
    "compression_rate",
    "SegDiffIndex",
    "LiveIndex",
    "LiveSnapshot",
    "LiveTieredIndex",
    "TieredIndex",
    "TransectIndex",
    "CorroboratedEvent",
    "QueryPlanner",
    "FeatureExtractor",
    "Parallelogram",
    "QueryRegion",
    "DropQuery",
    "JumpQuery",
    "QuerySession",
    "QueryPlan",
    "CostModel",
    "ExplainReport",
    "build_plan",
    "SearchHit",
    "witness_event",
    "summarize_hits",
    "render_summary",
    "collect_features",
    "audit_completeness",
    "audit_soundness",
    "MemoryFeatureStore",
    "SqliteFeatureStore",
    "ExhIndex",
    "NaiveScan",
    "__version__",
]

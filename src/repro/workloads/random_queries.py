"""Random drop-query workloads over the ``(T, V)`` plane.

Section 6.4 evaluates both systems on random queries whose coverage of
the query plane is shown in Figure 16; Figures 17–24 then plot per-query
execution times and their ratios.  :func:`random_drop_queries` reproduces
that workload: ``T`` uniform over ``(0, w]``, ``V`` uniform over the
data's drop range (the paper's data spans drops of 0 to −35 °C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..core.queries import DropQuery
from ..errors import InvalidParameterError

__all__ = ["QueryGrid", "random_drop_queries", "cad_query_set"]


@dataclass(frozen=True)
class QueryGrid:
    """A set of drop queries with their positions in the query plane."""

    queries: Tuple[DropQuery, ...]

    def __iter__(self) -> Iterator[DropQuery]:
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)

    def coverage(self) -> List[Tuple[float, float]]:
        """``(T, V)`` scatter — what Figure 16 plots."""
        return [(q.t_threshold, q.v_threshold) for q in self.queries]


def random_drop_queries(
    n: int,
    window: float,
    v_range: Tuple[float, float] = (-35.0, -0.5),
    t_min: float = 300.0,
    seed: Optional[int] = 16,
) -> QueryGrid:
    """``n`` random drop queries with ``T in [t_min, w]``, ``V`` in range.

    ``v_range`` is ``(deepest, shallowest)`` — both negative.
    """
    if n < 1:
        raise InvalidParameterError("need at least one query")
    if window <= t_min:
        raise InvalidParameterError("window must exceed t_min")
    deep, shallow = v_range
    if not (deep < 0 and shallow < 0 and deep <= shallow):
        raise InvalidParameterError(
            "v_range must be (deepest, shallowest) with both negative"
        )
    rng = np.random.default_rng(seed)
    ts = rng.uniform(t_min, window, size=n)
    vs = rng.uniform(deep, shallow, size=n)
    return QueryGrid(tuple(DropQuery(float(t), float(v)) for t, v in zip(ts, vs)))


def cad_query_set(window: float = 8 * 3600.0) -> QueryGrid:
    """The biologists' exploratory queries from the introduction.

    Variations around the canonical CAD definition — "a drop of no less
    than 3 degree Celsius within 1 hour" — with looser and tighter
    thresholds, capped at the index window.
    """
    hours = 3600.0
    candidates = [
        (1.0 * hours, -3.0),   # the canonical CAD query
        (0.5 * hours, -2.0),   # faster, shallower drainage
        (1.0 * hours, -5.0),   # severe events only
        (2.0 * hours, -4.0),   # slower, deeper pooling
        (4.0 * hours, -8.0),   # major cold pools
    ]
    queries = [
        DropQuery(t, v) for t, v in candidates if t <= window
    ]
    if not queries:
        raise InvalidParameterError("window too small for the CAD query set")
    return QueryGrid(tuple(queries))

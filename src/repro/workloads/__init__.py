"""Query workloads for the experiments (Section 6.4's random queries)."""

from .random_queries import QueryGrid, random_drop_queries, cad_query_set

__all__ = ["QueryGrid", "random_drop_queries", "cad_query_set"]

"""In-memory feature store backed by numpy arrays.

This backend exists for two reasons: it makes the large property-based
test suite fast, and it serves as the "no database" ablation point —
``mode="scan"`` is a straight vectorized filter, ``mode="index"`` sorts
the point tables by ``dt`` once at ``finalize()`` and narrows candidates
with a binary search before applying the value predicate (a faithful
analogue of a ``(dt, dv)`` B-tree's leading-column pruning).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.corners import FeatureSet
from ..errors import InvalidParameterError, StorageError
from ..obs import context as obs_context
from ..obs.metrics import REGISTRY, ROWS_BUCKETS
from ..types import SegmentPair
from .base import FeatureStore, Query, StoreCounts
from .grid_index import GridIndex

__all__ = ["MemoryFeatureStore"]

_ROWS_WRITTEN = REGISTRY.counter(
    "repro_store_rows_written_total",
    "Feature rows written to a store", {"backend": "memory"},
)
_FLUSH_ROWS = REGISTRY.histogram(
    "repro_store_flush_rows",
    "Rows per bulk write reaching a store", {"backend": "memory"},
    buckets=ROWS_BUCKETS,
)
_OPEN_STORES = REGISTRY.gauge(
    "repro_store_open", "Feature stores currently open",
    {"backend": "memory"},
)

_POINT_WIDTH = 6  # dt, dv, t_d, t_c, t_b, t_a
_LINE_WIDTH = 8  # dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a


class _Table:
    """An append/extend buffer that freezes into a 2-D float array.

    Scalar ``append`` collects tuples; bulk ``extend`` stores whole row
    arrays as chunks.  Both preserve global insertion order — pending
    tuples are sealed into a chunk whenever an array arrives — and
    ``freeze`` concatenates everything once.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        self._rows: List[tuple] = []
        self._chunks: List[np.ndarray] = []
        self._frozen: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None  # sort permutation by col 0
        self._grid: Optional[GridIndex] = None  # built lazily on demand

    def _thaw(self) -> None:
        """Reopen a frozen table for further writes."""
        if self._frozen is not None:
            if self._frozen.shape[0]:
                self._chunks = [self._frozen]
            self._frozen = None
            self._order = None
            self._grid = None

    def append(self, row: tuple) -> None:
        self._thaw()
        self._rows.append(row)

    def extend(self, rows: np.ndarray) -> None:
        if rows.shape[0] == 0:
            return
        self._thaw()
        if self._rows:
            self._chunks.append(
                np.asarray(self._rows, dtype=float).reshape(-1, self.width)
            )
            self._rows = []
        self._chunks.append(np.asarray(rows, dtype=float))

    def freeze(self) -> None:
        if self._frozen is None:
            parts = list(self._chunks)
            if self._rows:
                parts.append(
                    np.asarray(self._rows, dtype=float).reshape(-1, self.width)
                )
            if not parts:
                self._frozen = np.empty((0, self.width), dtype=float)
            elif len(parts) == 1:
                self._frozen = parts[0]
            else:
                self._frozen = np.concatenate(parts, axis=0)
            self._rows = []
            self._chunks = []
        self._order = np.argsort(self._frozen[:, 0], kind="stable")

    @property
    def data(self) -> np.ndarray:
        if self._frozen is None:
            raise StorageError("store not finalized; call finalize() first")
        return self._frozen

    @property
    def sorted_by_dt(self) -> np.ndarray:
        return self.data[self._order]

    @property
    def grid(self) -> GridIndex:
        if self._grid is None:
            self._grid = GridIndex(self.data)
        return self._grid

    def replace(self, start: int, rows: np.ndarray) -> None:
        """Overwrite rows ``[start, start + len(rows))`` in place.

        Anti-entropy repair path: the table must be frozen, and the
        dt-order permutation and grid are invalidated because row values
        changed under them.
        """
        if self._frozen is None:
            raise StorageError("store not finalized; call finalize() first")
        rows = np.asarray(rows, dtype=float).reshape(-1, self.width)
        stop = start + rows.shape[0]
        if start < 0 or stop > self._frozen.shape[0]:
            raise StorageError(
                f"row range [{start}, {stop}) outside table of "
                f"{self._frozen.shape[0]} rows"
            )
        if not self._frozen.flags.writeable:
            self._frozen = self._frozen.copy()
        self._frozen[start:stop] = rows
        self._order = np.argsort(self._frozen[:, 0], kind="stable")
        self._grid = None

    def __len__(self) -> int:
        if self._frozen is not None:
            return self._frozen.shape[0]
        return len(self._rows) + sum(c.shape[0] for c in self._chunks)

    def nbytes(self) -> int:
        return len(self) * self.width * 8

    def index_nbytes(self) -> int:
        if self._order is None:
            return 0
        return int(self._order.nbytes)


class MemoryFeatureStore(FeatureStore):
    """Numpy-backed feature store (see module docstring)."""

    BACKEND = "memory"
    # frozen numpy arrays are safe to read concurrently; the session
    # layer therefore imposes no lock on this backend
    THREAD_SAFE_READS = True

    def __init__(self) -> None:
        self._tables: Dict[str, _Table] = {
            "drop_points": _Table(_POINT_WIDTH),
            "drop_lines": _Table(_LINE_WIDTH),
            "jump_points": _Table(_POINT_WIDTH),
            "jump_lines": _Table(_LINE_WIDTH),
        }
        self._segments: List = []
        self._meta: Dict[str, float] = {}
        self._closed = False
        _OPEN_STORES.inc()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def add(self, features: FeatureSet) -> None:
        self._check_open()
        ident = features.pair.as_tuple()
        for p in features.drop_points:
            self._tables["drop_points"].append((p.dt, p.dv) + ident)
        for seg in features.drop_lines:
            self._tables["drop_lines"].append(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        for p in features.jump_points:
            self._tables["jump_points"].append((p.dt, p.dv) + ident)
        for seg in features.jump_lines:
            self._tables["jump_lines"].append(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        _ROWS_WRITTEN.inc(
            len(features.drop_points) + len(features.drop_lines)
            + len(features.jump_points) + len(features.jump_lines)
        )

    def add_features_bulk(self, batch) -> None:
        """Extend the four tables with the batch's row arrays directly."""
        self._check_open()
        self._tables["drop_points"].extend(batch.drop_points)
        self._tables["drop_lines"].extend(batch.drop_lines)
        self._tables["jump_points"].extend(batch.jump_points)
        self._tables["jump_lines"].extend(batch.jump_lines)
        n = (
            batch.drop_points.shape[0] + batch.drop_lines.shape[0]
            + batch.jump_points.shape[0] + batch.jump_lines.shape[0]
        )
        _ROWS_WRITTEN.inc(n)
        _FLUSH_ROWS.observe(n)

    def add_segments_bulk(self, segments) -> None:
        self._check_open()
        self._segments.extend(segments)

    def finalize(self) -> None:
        self._check_open()
        for table in self._tables.values():
            table.freeze()

    def add_segment(self, segment) -> None:
        self._check_open()
        self._segments.append(segment)

    def load_segments(self) -> List:
        self._check_open()
        return list(self._segments)

    def set_meta(self, key: str, value: float) -> None:
        self._check_open()
        self._meta[key] = float(value)

    def get_meta(self, key: str):
        self._check_open()
        return self._meta.get(key)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def search(self, query: Query, mode: str = "index") -> List[SegmentPair]:
        """Search with plan ``mode``: ``"scan"``, ``"index"`` (dt-sorted
        binary search), or ``"grid"`` (2-D bucket grid over points).

        Compatibility shim — the union/dedup semantics live in
        :mod:`repro.engine.executor`.
        """
        self._check_open()
        if mode not in ("index", "scan", "grid"):
            raise InvalidParameterError(
                f"mode must be 'index', 'scan' or 'grid', got {mode!r}"
            )
        return self._engine_search(query, mode)

    # -- physical primitives (engine interface) ------------------------ #
    #
    # The columnar ``*_array`` primitives are the real implementations:
    # frozen tables already live as contiguous float64 arrays, so a scan
    # is a zero-copy handle and an index probe a binary-search slice of
    # the dt-sorted view.  The scalar names are thin delegating shims —
    # nothing on this backend ever materializes per-row tuples.

    def scan_points_array(self, kind, t_threshold=None, v_threshold=None,
                          cache="warm", guard=None):
        """Full point table as a zero-copy ``(m, 6)`` block; prefiltering
        is left to the executor's vectorized masks (equally fast on
        frozen numpy arrays).

        Reads here are single array slices, so the cooperative-deadline
        contract reduces to one ``tick()`` per call.
        """
        self._check_open()
        if guard is not None:
            guard.tick()
        block = self._tables[f"{kind}_points"].data
        # zero-copy handle: rows are scanned but no bytes are decoded
        obs_context.account(rows_scanned=int(block.shape[0]))
        return block

    def probe_point_index_array(self, kind, t_threshold, v_threshold=None,
                                cache="warm", guard=None):
        """dt-sorted binary-search prune — the B-tree leading-column
        analogue — as a zero-copy slice of the sorted view."""
        self._check_open()
        if guard is not None:
            guard.tick()
        data = self._tables[f"{kind}_points"].sorted_by_dt
        cut = int(np.searchsorted(data[:, 0], t_threshold, side="right"))
        obs_context.account(rows_scanned=cut)
        return data[:cut]

    def scan_lines_array(self, kind, t_threshold=None, v_threshold=None,
                         cache="warm", guard=None):
        self._check_open()
        if guard is not None:
            guard.tick()
        block = self._tables[f"{kind}_lines"].data
        obs_context.account(rows_scanned=int(block.shape[0]))
        return block

    def probe_line_index_array(self, kind, t_threshold, v_threshold=None,
                               cache="warm", guard=None):
        self._check_open()
        if guard is not None:
            guard.tick()
        data = self._tables[f"{kind}_lines"].sorted_by_dt
        cut = int(np.searchsorted(data[:, 0], t_threshold, side="right"))
        obs_context.account(rows_scanned=cut)
        return data[:cut]

    def scan_points(self, kind, t_threshold=None, v_threshold=None,
                    cache="warm", guard=None):
        return self.scan_points_array(
            kind, t_threshold=t_threshold, v_threshold=v_threshold,
            cache=cache, guard=guard,
        )

    def probe_point_index(self, kind, t_threshold, v_threshold=None,
                          cache="warm", guard=None):
        return self.probe_point_index_array(
            kind, t_threshold, v_threshold=v_threshold, cache=cache,
            guard=guard,
        )

    def probe_point_grid(self, kind, t_threshold, v_threshold):
        self._check_open()
        return self._tables[f"{kind}_points"].grid.query(
            kind, t_threshold, v_threshold
        )

    def scan_lines(self, kind, t_threshold=None, v_threshold=None,
                   cache="warm", guard=None):
        return self.scan_lines_array(
            kind, t_threshold=t_threshold, v_threshold=v_threshold,
            cache=cache, guard=guard,
        )

    def probe_line_index(self, kind, t_threshold, v_threshold=None,
                         cache="warm", guard=None):
        return self.probe_line_index_array(
            kind, t_threshold, v_threshold=v_threshold, cache=cache,
            guard=guard,
        )

    def read_table_rows(self, table: str, start: int = 0,
                        stop: Optional[int] = None) -> np.ndarray:
        """Insertion-order row range as a copy (callers may mutate)."""
        self._check_open()
        if table not in self._tables:
            raise InvalidParameterError(f"unknown feature table {table!r}")
        return self._tables[table].data[start:stop].copy()

    def replace_table_rows(self, table: str, start: int, rows) -> None:
        self._check_open()
        if table not in self._tables:
            raise InvalidParameterError(f"unknown feature table {table!r}")
        self._tables[table].replace(start, rows)

    def sample_points(self, kind: str, n: int) -> Optional[np.ndarray]:
        """Evenly strided (dt, dv) sample of the point table (see base)."""
        self._check_open()
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown kind {kind!r}")
        data = self._tables[f"{kind}_points"].data
        if data.shape[0] == 0:
            return None
        step = max(1, data.shape[0] // max(n, 1))
        return data[::step][:n, :2].copy()

    def extreme_feature_dv(self, kind: str) -> Optional[float]:
        """Min (drop) / max (jump) stored Δv across points and lines."""
        self._check_open()
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown kind {kind!r}")
        points = self._tables[f"{kind}_points"].data
        lines = self._tables[f"{kind}_lines"].data
        candidates = []
        if points.shape[0]:
            candidates.append(points[:, 1])
        if lines.shape[0]:
            candidates.append(lines[:, 1])
            candidates.append(lines[:, 3])
        if not candidates:
            return None
        stacked = np.concatenate(candidates)
        return float(stacked.min() if kind == "drop" else stacked.max())

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def counts(self) -> StoreCounts:
        self._check_open()
        return StoreCounts(
            drop_points=len(self._tables["drop_points"]),
            drop_lines=len(self._tables["drop_lines"]),
            jump_points=len(self._tables["jump_points"]),
            jump_lines=len(self._tables["jump_lines"]),
        )

    def feature_bytes(self) -> int:
        return sum(t.nbytes() for t in self._tables.values())

    def index_bytes(self) -> int:
        return sum(t.index_nbytes() for t in self._tables.values())

    def close(self) -> None:
        if not self._closed:
            _OPEN_STORES.dec()
        self._tables = {}
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

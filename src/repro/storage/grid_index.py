"""A uniform 2-D grid index over (Δt, Δv) point features.

The similarity-search literature the paper builds on ([1], [4], [7])
reaches for spatial access methods (R*-trees) where SegDiff uses composite
B-trees.  This module provides the simplest spatial competitor — a
bucketed uniform grid — as a third access path for the in-memory store
(``mode="grid"``), so the access-method choice can be ablated:

* cells fully inside the query region contribute all their rows;
* boundary cells are filtered row-by-row;
* cells fully outside are skipped.

Grids shine when queries are small relative to the data extent and
degrade toward a scan for the hard top-right queries — the same geometry
that defeats the B-tree in the paper's Figures 19-20.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import InvalidParameterError

__all__ = ["GridIndex"]


class GridIndex:
    """Immutable grid over the first two columns of a row array.

    Parameters
    ----------
    rows:
        ``(m, k)`` float array; column 0 is Δt, column 1 is Δv.
    cells_per_axis:
        Grid resolution (same along both axes).
    """

    def __init__(self, rows: np.ndarray, cells_per_axis: int = 64) -> None:
        if rows.ndim != 2 or rows.shape[1] < 2:
            raise InvalidParameterError(
                "rows must be a 2-D array with at least (dt, dv) columns"
            )
        if cells_per_axis < 1:
            raise InvalidParameterError("cells_per_axis must be >= 1")
        self.rows = rows
        self.n = cells_per_axis
        m = rows.shape[0]
        if m == 0:
            self._order = np.empty(0, dtype=np.intp)
            self._offsets = np.zeros(cells_per_axis**2 + 1, dtype=np.intp)
            self._dt_lo = self._dv_lo = 0.0
            self._dt_step = self._dv_step = 1.0
            return

        dt = rows[:, 0]
        dv = rows[:, 1]
        self._dt_lo = float(dt.min())
        self._dv_lo = float(dv.min())
        dt_span = max(float(dt.max()) - self._dt_lo, 1e-12)
        dv_span = max(float(dv.max()) - self._dv_lo, 1e-12)
        self._dt_step = dt_span / self.n
        self._dv_step = dv_span / self.n

        ci = self._cell_of(dt, dv)
        self._order = np.argsort(ci, kind="stable")
        sorted_cells = ci[self._order]
        self._offsets = np.searchsorted(
            sorted_cells, np.arange(self.n**2 + 1)
        ).astype(np.intp)

    def _cell_of(self, dt: np.ndarray, dv: np.ndarray) -> np.ndarray:
        i = np.clip(((dt - self._dt_lo) / self._dt_step).astype(int), 0, self.n - 1)
        j = np.clip(((dv - self._dv_lo) / self._dv_step).astype(int), 0, self.n - 1)
        return i * self.n + j

    def _cell_bounds(self, i: int, j: int) -> Tuple[float, float, float, float]:
        return (
            self._dt_lo + i * self._dt_step,
            self._dt_lo + (i + 1) * self._dt_step,
            self._dv_lo + j * self._dv_step,
            self._dv_lo + (j + 1) * self._dv_step,
        )

    def query(self, kind: str, t_thr: float, v_thr: float) -> np.ndarray:
        """Rows matching the point predicate, via grid pruning.

        Returns the matching rows (not indices), in no particular order.
        """
        if kind not in ("drop", "jump"):
            raise InvalidParameterError(f"unknown kind {kind!r}")
        if self.rows.shape[0] == 0:
            return self.rows

        # candidate dt cells: those whose low edge is <= T
        i_max = int(
            min(
                self.n - 1,
                math.floor((t_thr - self._dt_lo) / self._dt_step),
            )
        )
        if t_thr < self._dt_lo:
            return self.rows[:0]

        chunks = []
        for i in range(0, i_max + 1):
            for j in range(self.n):
                dt_lo, dt_hi, dv_lo, dv_hi = self._cell_bounds(i, j)
                if kind == "drop":
                    outside = dv_lo > v_thr
                    inside = dt_hi <= t_thr and dv_hi <= v_thr
                else:
                    outside = dv_hi < v_thr
                    inside = dt_hi <= t_thr and dv_lo >= v_thr
                if outside:
                    continue
                lo = self._offsets[i * self.n + j]
                hi = self._offsets[i * self.n + j + 1]
                if lo == hi:
                    continue
                block = self.rows[self._order[lo:hi]]
                if inside:
                    chunks.append(block)
                else:
                    mask = block[:, 0] <= t_thr
                    if kind == "drop":
                        mask &= block[:, 1] <= v_thr
                    else:
                        mask &= block[:, 1] >= v_thr
                    if mask.any():
                        chunks.append(block[mask])
        if not chunks:
            return self.rows[:0]
        return np.vstack(chunks)

    def cells_examined(self, t_thr: float, v_thr: float, kind: str) -> int:
        """How many grid cells a query touches (for the ablation report)."""
        if self.rows.shape[0] == 0 or t_thr < self._dt_lo:
            return 0
        i_max = int(
            min(self.n - 1, math.floor((t_thr - self._dt_lo) / self._dt_step))
        )
        count = 0
        for i in range(0, i_max + 1):
            for j in range(self.n):
                _dt_lo, _dt_hi, dv_lo, dv_hi = self._cell_bounds(i, j)
                if kind == "drop" and dv_lo > v_thr:
                    continue
                if kind == "jump" and dv_hi < v_thr:
                    continue
                count += 1
        return count

"""Relational schema shared by the storage backends, plus the paper's
space-accounting model (Section 5.2).

Four feature tables hold the ε-shifted corners and boundary edges:

* ``drop_points(dt, dv, t_d, t_c, t_b, t_a)``
* ``drop_lines(dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a)``
* ``jump_points`` / ``jump_lines`` — identical shapes.

Every row carries the four boundary timestamps of its segment pair so a
query hit is self-describing (the paper stores three timestamps and
recomputes the fourth; we spend one extra column for clarity — the size
*ratios* the experiments report are unaffected because both SegDiff and
Exh carry their identifying timestamps).
"""

from __future__ import annotations

from ..errors import InvalidParameterError

__all__ = [
    "SEGDIFF_TABLES",
    "POINT_TABLES",
    "LINE_TABLES",
    "CREATE_TABLE_SQL",
    "CREATE_INDEX_SQL",
    "INDEX_NAMES",
    "SEGMENTS_DDL",
    "META_DDL",
    "COLUMNS_EXH",
    "columns_for_corner_count",
    "space_saving_ratio",
]

POINT_TABLES = {"drop": "drop_points", "jump": "jump_points"}
LINE_TABLES = {"drop": "drop_lines", "jump": "jump_lines"}
SEGDIFF_TABLES = tuple(POINT_TABLES.values()) + tuple(LINE_TABLES.values())

_POINT_DDL = (
    "CREATE TABLE {name} ("
    "dt REAL NOT NULL, dv REAL NOT NULL, "
    "t_d REAL NOT NULL, t_c REAL NOT NULL, "
    "t_b REAL NOT NULL, t_a REAL NOT NULL)"
)
_LINE_DDL = (
    "CREATE TABLE {name} ("
    "dt1 REAL NOT NULL, dv1 REAL NOT NULL, "
    "dt2 REAL NOT NULL, dv2 REAL NOT NULL, "
    "t_d REAL NOT NULL, t_c REAL NOT NULL, "
    "t_b REAL NOT NULL, t_a REAL NOT NULL)"
)

CREATE_TABLE_SQL = {
    "drop_points": _POINT_DDL.format(name="drop_points"),
    "jump_points": _POINT_DDL.format(name="jump_points"),
    "drop_lines": _LINE_DDL.format(name="drop_lines"),
    "jump_lines": _LINE_DDL.format(name="jump_lines"),
}

#: Side tables making an index file self-describing: the data segments
#: (so a reopened index can rebuild its approximation) and scalar build
#: metadata (epsilon, window).  Neither counts as "features" in the size
#: accounting — the paper's Exh carries the raw series implicitly too.
SEGMENTS_DDL = (
    "CREATE TABLE IF NOT EXISTS segments ("
    "seq INTEGER PRIMARY KEY, "
    "t_start REAL NOT NULL, v_start REAL NOT NULL, "
    "t_end REAL NOT NULL, v_end REAL NOT NULL)"
)
META_DDL = (
    "CREATE TABLE IF NOT EXISTS segdiff_meta "
    "(key TEXT PRIMARY KEY, value REAL NOT NULL)"
)

# B-tree indexes per Section 4.4: concatenation of (dt, dv) for point
# queries, (dt1, dv1, dt2, dv2) for line queries.
INDEX_NAMES = {
    "drop_points": "idx_drop_points",
    "jump_points": "idx_jump_points",
    "drop_lines": "idx_drop_lines",
    "jump_lines": "idx_jump_lines",
}
CREATE_INDEX_SQL = {
    "drop_points": "CREATE INDEX idx_drop_points ON drop_points(dt, dv)",
    "jump_points": "CREATE INDEX idx_jump_points ON jump_points(dt, dv)",
    "drop_lines": (
        "CREATE INDEX idx_drop_lines ON drop_lines(dt1, dv1, dt2, dv2)"
    ),
    "jump_lines": (
        "CREATE INDEX idx_jump_lines ON jump_lines(dt1, dv1, dt2, dv2)"
    ),
}

#: Columns per Exh row: time span, difference, one absolute time stamp
#: (Section 5.2: c1 = 3).
COLUMNS_EXH = 3


def columns_for_corner_count(corners: int) -> int:
    """The paper's ``c2``: columns per stored parallelogram boundary.

    One corner needs 5 columns, two need 6, three need 7 (Section 5.2).
    """
    if corners not in (1, 2, 3):
        raise InvalidParameterError(
            f"corner count must be 1, 2 or 3, got {corners}"
        )
    return corners + 4


def space_saving_ratio(
    c1: float, c2: float, n_w: float, m_w: float, r: float
) -> float:
    """Section 5.2's analytic space saving ``(c1/c2) * (n_w/m_w) * r``.

    ``n_w``/``m_w`` are observations / segments per window, ``r`` the
    segmentation compression rate.  Exh uses this many times SegDiff's
    space under the model's assumptions.
    """
    if min(c1, c2, n_w, m_w, r) <= 0:
        raise InvalidParameterError("all model quantities must be positive")
    return (c1 / c2) * (n_w / m_w) * r

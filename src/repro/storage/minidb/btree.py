"""A bulk-loaded B+tree over composite float keys.

The Section 4.4 indexes are B-trees on the concatenation of feature
columns — ``(dt, dv)`` for point tables, ``(dt1, dv1, dt2, dv2)`` for
line tables.  This module implements the structure directly:

* leaves hold ``(key, rid)`` entries and are chained for range scans;
* internal nodes hold separator keys;
* the tree is built bottom-up from sorted entries (``CREATE INDEX``
  semantics — MiniDB rebuilds indexes at ``finalize()``), and also
  supports incremental :meth:`insert` with classic leaf/internal node
  splits, so a live index can absorb streamed features.

A leading-column range query (``dt <= T``) scans leaves from the leftmost
one and stops at the first key exceeding ``T``; every *match* then costs
a heap-page fetch via its rid, which is exactly why forced index plans
lose on large result sets (Figures 19-20).

Page layouts (little-endian)::

    leaf:     u8 kind=1 | i32 n | i32 next_leaf | n * (key..., rid_page, rid_slot)
    internal: u8 kind=0 | i32 n | i32 child0 | n * (key..., child)
"""

from __future__ import annotations

import bisect
import struct
from typing import Iterator, List, Optional, Sequence, Tuple

from ...errors import InvalidParameterError, StorageError
from .heapfile import RID
from .pager import PAGE_CAPACITY, PAGE_SIZE, Pager

__all__ = ["BPlusTree"]

_LEAF_HEADER = struct.Struct("<Bii")  # kind, n_entries, next_leaf
_INT_HEADER = struct.Struct("<Bii")  # kind, n_keys, child0

Key = Tuple[float, ...]
Entry = Tuple[Key, RID]


class BPlusTree:
    """Read-only-after-build B+tree (see module docstring).

    Parameters
    ----------
    pager:
        Shared pager.
    key_width:
        Floats per key.
    root:
        Existing root page to reopen, or ``-1`` before :meth:`bulk_load`.
    """

    def __init__(self, pager: Pager, key_width: int, root: int = -1) -> None:
        if key_width < 1:
            raise InvalidParameterError("key width must be >= 1")
        self.pager = pager
        self.key_width = key_width
        self.root = root
        self._key = struct.Struct("<" + "d" * key_width)
        self._leaf_entry = struct.Struct("<" + "d" * key_width + "ii")
        self._int_entry = struct.Struct("<" + "d" * key_width + "i")
        self.leaf_fanout = (
            PAGE_CAPACITY - _LEAF_HEADER.size
        ) // self._leaf_entry.size
        self.internal_fanout = (
            PAGE_CAPACITY - _INT_HEADER.size
        ) // self._int_entry.size
        if self.leaf_fanout < 2 or self.internal_fanout < 2:
            raise InvalidParameterError(
                f"key width {key_width} leaves too little fanout"
            )

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def bulk_load(self, entries: Sequence[Entry]) -> int:
        """Build the tree from entries sorted ascending by key.

        Returns (and stores) the root page id; an empty input produces an
        empty leaf root.
        """
        for a, b in zip(entries, entries[1:]):
            if a[0] > b[0]:
                raise InvalidParameterError("bulk_load requires sorted entries")

        # level 0: packed, chained leaves
        leaf_ids: List[int] = []
        first_keys: List[Key] = []
        chunk = self.leaf_fanout
        groups = [
            entries[i : i + chunk] for i in range(0, len(entries), chunk)
        ] or [[]]
        for group in groups:
            page = bytearray(PAGE_SIZE)
            _LEAF_HEADER.pack_into(page, 0, 1, len(group), -1)
            offset = _LEAF_HEADER.size
            for key, rid in group:
                self._leaf_entry.pack_into(
                    page, offset, *key, rid.page_id, rid.slot
                )
                offset += self._leaf_entry.size
            page_id = self.pager.allocate()
            self.pager.write(page_id, bytes(page))
            leaf_ids.append(page_id)
            first_keys.append(tuple(group[0][0]) if group else ())
        for prev, nxt in zip(leaf_ids, leaf_ids[1:]):
            page = bytearray(self.pager.read(prev))
            kind, n, _old_next = _LEAF_HEADER.unpack_from(page, 0)
            _LEAF_HEADER.pack_into(page, 0, kind, n, nxt)
            self.pager.write(prev, bytes(page))

        # upper levels
        child_ids, child_keys = leaf_ids, first_keys
        while len(child_ids) > 1:
            parent_ids: List[int] = []
            parent_keys: List[Key] = []
            chunk = self.internal_fanout
            for i in range(0, len(child_ids), chunk):
                ids = child_ids[i : i + chunk]
                keys = child_keys[i : i + chunk]
                page = bytearray(PAGE_SIZE)
                _INT_HEADER.pack_into(page, 0, 0, len(ids) - 1, ids[0])
                offset = _INT_HEADER.size
                for key, child in zip(keys[1:], ids[1:]):
                    self._int_entry.pack_into(page, offset, *key, child)
                    offset += self._int_entry.size
                page_id = self.pager.allocate()
                self.pager.write(page_id, bytes(page))
                parent_ids.append(page_id)
                parent_keys.append(keys[0])
            child_ids, child_keys = parent_ids, parent_keys

        self.root = child_ids[0]
        return self.root

    # ------------------------------------------------------------------ #
    # incremental insert
    # ------------------------------------------------------------------ #

    def insert(self, key: Key, rid: RID) -> None:
        """Insert one entry, splitting nodes as needed.

        Duplicate keys are allowed (entries with equal keys are adjacent
        in scan order).  The tree must have been built (possibly from an
        empty ``bulk_load([])``).
        """
        self._check_built()
        if len(key) != self.key_width:
            raise InvalidParameterError("key has wrong width")
        key = tuple(float(k) for k in key)
        split = self._insert_into(self.root, key, rid)
        if split is not None:
            sep_key, right_id = split
            # grow a new root above the old one
            page = bytearray(PAGE_SIZE)
            _INT_HEADER.pack_into(page, 0, 0, 1, self.root)
            self._int_entry.pack_into(
                page, _INT_HEADER.size, *sep_key, right_id
            )
            new_root = self.pager.allocate()
            self.pager.write(new_root, bytes(page))
            self.root = new_root

    def _insert_into(self, page_id: int, key: Key, rid: RID):
        """Recursive insert; returns ``(separator, new_right_page)`` when
        ``page_id`` split, else ``None``."""
        node = self._decode(page_id)
        if node[0] == "leaf":
            _kind, entries, next_leaf = node
            idx = bisect.bisect_right([k for k, _ in entries], key)
            entries.insert(idx, (key, rid))
            if len(entries) <= self.leaf_fanout:
                self._write_leaf(page_id, entries, next_leaf)
                return None
            mid = len(entries) // 2
            left, right = entries[:mid], entries[mid:]
            right_id = self.pager.allocate()
            self._write_leaf(right_id, right, next_leaf)
            self._write_leaf(page_id, left, right_id)
            return (right[0][0], right_id)

        _kind, keys, children = node
        idx = bisect.bisect_right(keys, key)
        split = self._insert_into(children[idx], key, rid)
        if split is None:
            return None
        sep_key, right_id = split
        keys.insert(idx, sep_key)
        children.insert(idx + 1, right_id)
        if len(keys) <= self.internal_fanout:
            self._write_internal(page_id, keys, children)
            return None
        mid = len(keys) // 2
        up_key = keys[mid]
        left_keys, right_keys = keys[:mid], keys[mid + 1 :]
        left_children, right_children = children[: mid + 1], children[mid + 1 :]
        new_right = self.pager.allocate()
        self._write_internal(new_right, right_keys, right_children)
        self._write_internal(page_id, left_keys, left_children)
        return (up_key, new_right)

    def _write_leaf(self, page_id: int, entries, next_leaf: int) -> None:
        page = bytearray(PAGE_SIZE)
        _LEAF_HEADER.pack_into(page, 0, 1, len(entries), next_leaf)
        offset = _LEAF_HEADER.size
        for key, rid in entries:
            self._leaf_entry.pack_into(page, offset, *key, rid.page_id, rid.slot)
            offset += self._leaf_entry.size
        self.pager.write(page_id, bytes(page))

    def _write_internal(self, page_id: int, keys, children) -> None:
        page = bytearray(PAGE_SIZE)
        _INT_HEADER.pack_into(page, 0, 0, len(keys), children[0])
        offset = _INT_HEADER.size
        for key, child in zip(keys, children[1:]):
            self._int_entry.pack_into(page, offset, *key, child)
            offset += self._int_entry.size
        self.pager.write(page_id, bytes(page))

    # ------------------------------------------------------------------ #
    # page decoding
    # ------------------------------------------------------------------ #

    def _decode(self, page_id: int):
        page = self.pager.read(page_id)
        kind = page[0]
        if kind == 1:
            _k, n, next_leaf = _LEAF_HEADER.unpack_from(page, 0)
            entries = []
            offset = _LEAF_HEADER.size
            for _ in range(n):
                *key, rid_page, rid_slot = self._leaf_entry.unpack_from(
                    page, offset
                )
                entries.append((tuple(key), RID(rid_page, rid_slot)))
                offset += self._leaf_entry.size
            return ("leaf", entries, next_leaf)
        _k, n, child0 = _INT_HEADER.unpack_from(page, 0)
        keys: List[Key] = []
        children: List[int] = [child0]
        offset = _INT_HEADER.size
        for _ in range(n):
            *key, child = self._int_entry.unpack_from(page, offset)
            keys.append(tuple(key))
            children.append(child)
            offset += self._int_entry.size
        return ("internal", keys, children)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def _leftmost_leaf(self) -> int:
        self._check_built()
        page_id = self.root
        while True:
            node = self._decode(page_id)
            if node[0] == "leaf":
                return page_id
            page_id = node[2][0]

    def _leaf_for(self, key: Key) -> int:
        self._check_built()
        page_id = self.root
        while True:
            node = self._decode(page_id)
            if node[0] == "leaf":
                return page_id
            keys, children = node[1], node[2]
            idx = bisect.bisect_right(keys, key)
            page_id = children[idx]

    def scan_from(self, lo_key: Optional[Key] = None) -> Iterator[Entry]:
        """Entries with key >= ``lo_key`` in ascending order (all entries
        when ``lo_key`` is None)."""
        if lo_key is None:
            page_id = self._leftmost_leaf()
        else:
            if len(lo_key) != self.key_width:
                raise InvalidParameterError("lo_key has wrong width")
            page_id = self._leaf_for(tuple(lo_key))
        while page_id != -1:
            _kind, entries, next_leaf = self._decode(page_id)
            for key, rid in entries:
                if lo_key is None or key >= tuple(lo_key):
                    yield key, rid
            page_id = next_leaf

    def scan_leading_upto(self, first_max: float) -> Iterator[Entry]:
        """Entries whose leading key column is <= ``first_max``.

        This is the access path of the Section 4.4 queries: a range on
        the index's leading column from the left end.
        """
        page_id = self._leftmost_leaf()
        while page_id != -1:
            _kind, entries, next_leaf = self._decode(page_id)
            for key, rid in entries:
                if key[0] > first_max:
                    return
                yield key, rid
            page_id = next_leaf

    def height(self) -> int:
        """Levels from root to leaf (1 for a single-leaf tree)."""
        self._check_built()
        levels = 1
        page_id = self.root
        while True:
            node = self._decode(page_id)
            if node[0] == "leaf":
                return levels
            levels += 1
            page_id = node[2][0]

    def n_pages(self) -> int:
        """Pages in the tree (BFS count)."""
        self._check_built()
        count = 0
        frontier = [self.root]
        while frontier:
            page_id = frontier.pop()
            count += 1
            node = self._decode(page_id)
            if node[0] == "internal":
                frontier.extend(node[2])
        return count

    def _check_built(self) -> None:
        if self.root < 0:
            raise StorageError("B+tree has not been built yet")

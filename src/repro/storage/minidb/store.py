"""The MiniDB-backed feature store.

A drop-in third backend for :class:`~repro.storage.base.FeatureStore`
whose every query reports exactly which pages it touched
(``last_query_stats``) — the instrumented substrate behind
``repro.experiments.page_cost``.

Plan semantics mirror the SQLite backend:

* ``mode="scan"`` — sequential heap scans of the point and line tables;
* ``mode="index"`` — B+tree leading-column range scans; each *matching*
  entry pays one heap fetch for its identifying timestamps (the random
  I/O that makes indexes lose on hard queries);
* ``cache="cold"`` — the buffer pool is dropped before the query, making
  the paper's flushed-cache runs exact and deterministic.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

from ...engine.resilience import RetryPolicy
from ...errors import (
    CorruptionError,
    InvalidParameterError,
    RecoveryError,
    StorageError,
)
from ...obs import context as obs_context
from ...obs.metrics import REGISTRY, ROWS_BUCKETS
from ...types import DataSegment, SegmentPair
from ..base import FeatureStore, Query, StoreCounts
from ...core.corners import FeatureSet
from ...core.queries import line_mask, line_match, point_mask, point_match
from .columnar import ColumnarView, probe_index_block
from .database import MiniDatabase
from .pager import PAGE_SIZE, PagerStats

__all__ = ["MiniDbFeatureStore"]

_ROWS_WRITTEN = REGISTRY.counter(
    "repro_store_rows_written_total",
    "Feature rows written to a store", {"backend": "minidb"},
)
_FLUSH_ROWS = REGISTRY.histogram(
    "repro_store_flush_rows",
    "Rows per bulk write reaching a store", {"backend": "minidb"},
    buckets=ROWS_BUCKETS,
)
_OPEN_STORES = REGISTRY.gauge(
    "repro_store_open", "Feature stores currently open",
    {"backend": "minidb"},
)

_POINT_TABLES = {"drop": "drop_points", "jump": "jump_points"}
_LINE_TABLES = {"drop": "drop_lines", "jump": "jump_lines"}
_FEATURE_TABLES = ("drop_points", "drop_lines", "jump_points", "jump_lines")

#: Shared retry loop for transient open failures (a WAL held briefly by
#: a finishing writer, an EINTR-style hiccup).  Corruption/recovery
#: failures are deterministic — retrying cannot cure bad bytes.
_OPEN_RETRY = RetryPolicy(name="minidb_open")


def _open_transient(exc: BaseException) -> bool:
    return not isinstance(exc, (CorruptionError, RecoveryError))


class MiniDbFeatureStore(FeatureStore):
    """Feature store over a MiniDB page file.

    ``path=None`` uses a private temporary file removed on close;
    ``cache_pages`` sizes the buffer pool (warm-cache capacity).
    ``checksums`` / ``wal`` / ``fsync`` are the durability knobs (all
    page writes checksummed and every write batch atomic by default —
    see docs/durability.md).
    """

    BACKEND = "minidb"
    # reads go through a shared buffer pool with no latching
    THREAD_SAFE_READS = False

    def __init__(
        self,
        path: Optional[str] = None,
        cache_pages: int = 256,
        checksums: bool = True,
        wal: bool = True,
        fsync: bool = False,
    ) -> None:
        if path is None:
            fd, path = tempfile.mkstemp(prefix="segdiff-", suffix=".minidb")
            os.close(fd)
            os.unlink(path)
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self.db = _OPEN_RETRY.run(
            lambda: MiniDatabase(
                path,
                cache_pages=cache_pages,
                checksums=checksums,
                wal=wal,
                fsync=fsync,
            ),
            catch=(StorageError, OSError),
            transient=_open_transient,
        )
        with self.db.transaction():
            for name, width in (
                ("drop_points", 6),
                ("jump_points", 6),
                ("drop_lines", 8),
                ("jump_lines", 8),
                ("segments", 4),
            ):
                if not self.db.has_table(name):
                    self.db.create_table(name, width)
        self._closed = False
        # columnar read view over sealed heap pages: built lazily on the
        # first array scan, dropped on every write/checkpoint/cold-cache
        self._columnar = ColumnarView(self.db)
        self._indexed_rows: Dict[str, int] = {
            t: -1 for t in _FEATURE_TABLES
        }
        for t in _FEATURE_TABLES:
            if self.db.table(t).has_index("by_key"):
                self._indexed_rows[t] = self.db.table(t).n_rows
        #: Pager counters accumulated by the most recent search().
        self.last_query_stats: Optional[PagerStats] = None
        _OPEN_STORES.inc()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def add(self, features: FeatureSet) -> None:
        # deliberately NOT a transaction of its own: committing per
        # feature set would make a segment durable before all of its
        # pairs are, and a crash in between is unrecoverable (resume()
        # only regenerates pairs for segments after the last stored
        # one).  Work stays in the pool/WAL-pending until a checkpoint
        # boundary (finalize/set_meta) commits it.
        self._check_open()
        self._columnar.invalidate()
        self._add(features)

    def _add(self, features: FeatureSet) -> None:
        ident = features.pair.as_tuple()
        for p in features.drop_points:
            self.db.table("drop_points").insert((p.dt, p.dv) + ident)
        for seg in features.drop_lines:
            self.db.table("drop_lines").insert(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        for p in features.jump_points:
            self.db.table("jump_points").insert((p.dt, p.dv) + ident)
        for seg in features.jump_lines:
            self.db.table("jump_lines").insert(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        _ROWS_WRITTEN.inc(
            len(features.drop_points) + len(features.drop_lines)
            + len(features.jump_points) + len(features.jump_lines)
        )

    def add_features_bulk(self, batch) -> None:
        """Page-packed bulk append of a feature batch.

        Each heap page is written once when full instead of re-written
        per row.  Durability semantics match :meth:`add`: everything
        stays pool/WAL-pending until the next checkpoint boundary
        (finalize/set_meta) commits the whole run atomically.
        """
        self._check_open()
        self._columnar.invalidate()
        self.db.table("drop_points").insert_many(batch.drop_points)
        self.db.table("drop_lines").insert_many(batch.drop_lines)
        self.db.table("jump_points").insert_many(batch.jump_points)
        self.db.table("jump_lines").insert_many(batch.jump_lines)
        n = (
            len(batch.drop_points) + len(batch.drop_lines)
            + len(batch.jump_points) + len(batch.jump_lines)
        )
        _ROWS_WRITTEN.inc(n)
        _FLUSH_ROWS.observe(n)

    def add_segments_bulk(self, segments) -> None:
        # uncommitted until the next checkpoint boundary — see add()
        self._check_open()
        if not segments:
            return
        self._columnar.invalidate()
        self.db.table("segments").insert_many(
            [(s.t_start, s.v_start, s.t_end, s.v_end) for s in segments]
        )

    def finalize(self) -> None:
        """(Re)build the Section 4.4 B+trees and checkpoint the file."""
        self._check_open()
        self._columnar.invalidate()
        with self.db.transaction():
            for name in _FEATURE_TABLES:
                table = self.db.table(name)
                if table.n_rows == self._indexed_rows[name]:
                    continue  # index already current
                key_cols = (0, 1) if table.width == 6 else (0, 1, 2, 3)
                table.create_index("by_key", key_cols)
                self._indexed_rows[name] = table.n_rows
        self.db.checkpoint()

    def add_segment(self, segment) -> None:
        # uncommitted until the next checkpoint boundary — see add()
        self._check_open()
        self._columnar.invalidate()
        self.db.table("segments").insert(
            (segment.t_start, segment.v_start, segment.t_end, segment.v_end)
        )

    def load_segments(self) -> list:
        self._check_open()
        return [
            DataSegment(*row) for _rid, row in self.db.table("segments").scan()
        ]

    def set_meta(self, key: str, value: float) -> None:
        self._check_open()
        self._columnar.invalidate()
        self.db.set_meta(key, float(value))
        self.db.checkpoint()

    def get_meta(self, key: str):
        self._check_open()
        value = self.db.get_meta(key)
        return None if value is None else float(value)

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def search(
        self, query: Query, mode: str = "index", cache: str = "warm"
    ) -> List[SegmentPair]:
        """Compatibility shim — union/dedup lives in the engine executor;
        this store contributes page-instrumented physical primitives."""
        self._check_open()
        if mode not in ("index", "scan"):
            raise InvalidParameterError(
                f"mode must be 'index' or 'scan', got {mode!r}"
            )
        if cache not in ("warm", "cold"):
            raise InvalidParameterError(
                f"cache must be 'warm' or 'cold', got {cache!r}"
            )
        before = self.db.stats().snapshot()
        pairs = self._engine_search(query, mode, cache=cache)
        self.last_query_stats = self.db.stats().delta(before)
        return pairs

    # -- physical primitives (engine interface) ------------------------ #

    def _check_index_current(self, name: str) -> None:
        if self.db.table(name).n_rows != self._indexed_rows[name]:
            raise StorageError(
                "indexes stale or missing; call finalize() first"
            )

    def _prepare_cache(self, cache: str) -> None:
        if cache == "cold":
            # drop the buffer pool so this operator's page reads are the
            # paper's flushed-cache regime, exactly and deterministically;
            # the columnar view goes with it, so an array scan re-pays
            # the chain's physical reads just like a row-at-a-time one
            self.db.drop_cache()
            self._columnar.invalidate()

    @staticmethod
    def _cooperative(rows_iter, guard):
        """Wrap a row iterator with the guard's periodic deadline ticks.

        MiniDB reads are row-at-a-time loops over heap/B+tree iterators,
        so cooperative cancellation slots in as an iterator wrapper —
        a query stops within ``guard.check_every`` rows of its deadline.
        """
        if guard is None:
            return rows_iter
        return guard.wrap_iter(rows_iter)

    def scan_points(self, kind, t_threshold=None, v_threshold=None,
                    cache="warm", guard=None):
        self._check_open()
        self._prepare_cache(cache)
        rows = []
        scan = self._cooperative(
            self.db.table(_POINT_TABLES[kind]).scan(), guard
        )
        for _rid, row in scan:
            if v_threshold is not None and not point_match(
                kind, row[0], row[1], t_threshold, v_threshold
            ):
                continue
            rows.append(row)
        return rows

    def probe_point_index(self, kind, t_threshold, v_threshold=None,
                          cache="warm", guard=None):
        """B+tree leading-column probe.  The index key holds the full
        ``(dt, dv)`` predicate columns, so with a value pushdown only
        *matching* entries pay the heap fetch — the random I/O that makes
        indexes lose on hard queries stays visible in the page stats."""
        self._check_open()
        name = _POINT_TABLES[kind]
        self._check_index_current(name)
        self._prepare_cache(cache)
        table = self.db.table(name)
        rows = []
        probe = self._cooperative(
            table.index_scan_leading("by_key", t_threshold), guard
        )
        for key, rid in probe:
            if v_threshold is not None and not point_match(
                kind, key[0], key[1], t_threshold, v_threshold
            ):
                continue
            rows.append(key[:2] + self._ident(table, rid, 2))
        return rows

    def scan_lines(self, kind, t_threshold=None, v_threshold=None,
                   cache="warm", guard=None):
        self._check_open()
        self._prepare_cache(cache)
        rows = []
        scan = self._cooperative(
            self.db.table(_LINE_TABLES[kind]).scan(), guard
        )
        for _rid, row in scan:
            if v_threshold is not None and not line_match(
                kind, row[0], row[1], row[2], row[3],
                t_threshold, v_threshold,
            ):
                continue
            rows.append(row)
        return rows

    def probe_line_index(self, kind, t_threshold, v_threshold=None,
                         cache="warm", guard=None):
        self._check_open()
        name = _LINE_TABLES[kind]
        self._check_index_current(name)
        self._prepare_cache(cache)
        table = self.db.table(name)
        rows = []
        probe = self._cooperative(
            table.index_scan_leading("by_key", t_threshold), guard
        )
        for key, rid in probe:
            if v_threshold is not None and not line_match(
                kind, key[0], key[1], key[2], key[3],
                t_threshold, v_threshold,
            ):
                continue
            rows.append(key[:4] + self._ident(table, rid, 4))
        return rows

    @staticmethod
    def _ident(table, rid, key_width: int):
        return tuple(table.get(rid)[key_width:key_width + 4])

    # -- batch columnar primitives (vectorized engine interface) -------- #
    #
    # Same plan semantics and page accounting as the scalar primitives
    # above, but rows move as whole (m, width) blocks: heap chains are
    # decoded page-at-a-time through the columnar view (mmap'd when the
    # pager has no uncommitted state) and B+tree probes decode whole
    # leaves, gathering ident columns with one physical heap read per
    # distinct page.  See minidb/columnar.py for the accounting rules.

    def scan_points_array(self, kind, t_threshold=None, v_threshold=None,
                          cache="warm", guard=None):
        self._check_open()
        self._prepare_cache(cache)
        block = self._columnar.table_block(_POINT_TABLES[kind], guard=guard)
        obs_context.account(rows_scanned=int(block.shape[0]),
                            bytes_decoded=int(block.nbytes))
        if v_threshold is not None:
            block = block[point_mask(kind, block[:, 0], block[:, 1],
                                     t_threshold, v_threshold)]
        return block

    def probe_point_index_array(self, kind, t_threshold, v_threshold=None,
                                cache="warm", guard=None):
        self._check_open()
        name = _POINT_TABLES[kind]
        self._check_index_current(name)
        self._prepare_cache(cache)
        v_mask = None
        if v_threshold is not None:
            def v_mask(keys):
                return point_mask(kind, keys[:, 0], keys[:, 1],
                                  t_threshold, v_threshold)
        block = probe_index_block(self.db.table(name), "by_key",
                                  t_threshold, v_mask=v_mask, guard=guard)
        obs_context.account(rows_scanned=int(block.shape[0]),
                            bytes_decoded=int(block.nbytes))
        return block

    def scan_lines_array(self, kind, t_threshold=None, v_threshold=None,
                         cache="warm", guard=None):
        self._check_open()
        self._prepare_cache(cache)
        block = self._columnar.table_block(_LINE_TABLES[kind], guard=guard)
        obs_context.account(rows_scanned=int(block.shape[0]),
                            bytes_decoded=int(block.nbytes))
        if v_threshold is not None:
            block = block[line_mask(kind, block[:, 0], block[:, 1],
                                    block[:, 2], block[:, 3],
                                    t_threshold, v_threshold)]
        return block

    def probe_line_index_array(self, kind, t_threshold, v_threshold=None,
                               cache="warm", guard=None):
        self._check_open()
        name = _LINE_TABLES[kind]
        self._check_index_current(name)
        self._prepare_cache(cache)
        v_mask = None
        if v_threshold is not None:
            def v_mask(keys):
                return line_mask(kind, keys[:, 0], keys[:, 1],
                                 keys[:, 2], keys[:, 3],
                                 t_threshold, v_threshold)
        block = probe_index_block(self.db.table(name), "by_key",
                                  t_threshold, v_mask=v_mask, guard=guard)
        obs_context.account(rows_scanned=int(block.shape[0]),
                            bytes_decoded=int(block.nbytes))
        return block

    def page_reads(self) -> int:
        """Cumulative pager reads (the engine's EXPLAIN counter)."""
        self._check_open()
        return self.db.stats().page_reads

    def pager_stats(self) -> PagerStats:
        """Live cumulative pager counters (hits, misses, disk I/O)."""
        self._check_open()
        return self.db.stats()

    # ------------------------------------------------------------------ #
    # sampling / extremes (planner and top-k support)
    # ------------------------------------------------------------------ #

    def sample_points(self, kind: str, n: int):
        import numpy as np

        self._check_open()
        if kind not in _POINT_TABLES:
            raise InvalidParameterError(f"unknown kind {kind!r}")
        table = self.db.table(_POINT_TABLES[kind])
        total = table.n_rows
        if total == 0:
            return None
        step = max(1, total // max(n, 1))
        out = []
        for i, (_rid, row) in enumerate(table.scan()):
            if i % step == 0:
                out.append(row[:2])
                if len(out) >= n:
                    break
        return np.asarray(out, dtype=float)

    def extreme_feature_dv(self, kind: str):
        self._check_open()
        if kind not in _POINT_TABLES:
            raise InvalidParameterError(f"unknown kind {kind!r}")
        best: Optional[float] = None
        want_min = kind == "drop"

        def consider(value: float) -> None:
            nonlocal best
            if best is None or (value < best if want_min else value > best):
                best = value

        for _rid, row in self.db.table(_POINT_TABLES[kind]).scan():
            consider(row[1])
        for _rid, row in self.db.table(_LINE_TABLES[kind]).scan():
            consider(row[1])
            consider(row[3])
        return best

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def counts(self) -> StoreCounts:
        self._check_open()
        return StoreCounts(
            drop_points=self.db.table("drop_points").n_rows,
            drop_lines=self.db.table("drop_lines").n_rows,
            jump_points=self.db.table("jump_points").n_rows,
            jump_lines=self.db.table("jump_lines").n_rows,
        )

    def feature_bytes(self) -> int:
        self._check_open()
        pages = sum(
            self.db.table(t).heap_pages() for t in _FEATURE_TABLES
        )
        return pages * PAGE_SIZE

    def index_bytes(self) -> int:
        self._check_open()
        pages = sum(
            self.db.table(t).index_pages() for t in _FEATURE_TABLES
        )
        return pages * PAGE_SIZE

    def check(self):
        """Run the MiniDB fsck pass; returns a list of CorruptionErrors."""
        self._check_open()
        return self.db.check()

    def close(self) -> None:
        if self._closed:
            return
        self.db.close()
        self._closed = True
        _OPEN_STORES.dec()
        if self._owns_file:
            for leftover in (self.path, self.path + ".wal"):
                if os.path.exists(leftover):
                    os.unlink(leftover)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

"""MiniDB: a from-scratch page-based storage engine.

The paper's experiments hinge on storage-engine behaviour — B-tree versus
sequential scan, warm versus flushed caches, index height versus data
volume.  SQLite reproduces those effects but hides the mechanism; MiniDB
exposes it.  It is a deliberately small but real engine:

* :mod:`pager` — a page file with an LRU buffer pool and hit/miss/IO
  counters; the cache can be dropped at will (the paper's "flush the OS
  cache" made exact);
* :mod:`heapfile` — chained heap pages of fixed-width float rows with
  sequential scans and rid-based random access;
* :mod:`btree` — a bulk-loaded B+tree over composite float keys with
  leaf-chained range scans (the Section 4.4 indexes);
* :mod:`wal` — a physical write-ahead log so multi-page operations
  commit atomically and crashes recover to the committed prefix
  (docs/durability.md);
* :mod:`database` — catalog, tables, indexes, persistence, transactions,
  and the ``check()`` fsck pass;
* :mod:`store` — :class:`MiniDbFeatureStore`, a drop-in
  :class:`~repro.storage.base.FeatureStore` backend whose queries report
  exactly how many pages they touched.

With it, Figures 17-24 can be re-measured in *page reads* — a
hardware-independent cost unit (``repro.experiments.page_cost``).
"""

from .pager import PAGE_CAPACITY, PAGE_SIZE, Pager, PagerStats
from .heapfile import HeapFile, RID
from .btree import BPlusTree
from .database import MiniDatabase, Table
from .store import MiniDbFeatureStore
from .wal import WriteAheadLog

__all__ = [
    "PAGE_CAPACITY",
    "PAGE_SIZE",
    "Pager",
    "WriteAheadLog",
    "PagerStats",
    "HeapFile",
    "RID",
    "BPlusTree",
    "MiniDatabase",
    "Table",
    "MiniDbFeatureStore",
]

"""Page file with an LRU buffer pool.

All MiniDB structures live in fixed-size pages of one file.  The pager is
the only component that touches the file, so its counters account for
every logical and physical I/O in the system:

* ``hits`` / ``misses`` — buffer-pool lookups;
* ``disk_reads`` / ``disk_writes`` — actual file operations.

``drop_cache()`` empties the pool (writing back dirty pages first), which
is the exact, deterministic version of the paper's between-query OS-cache
flush.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional

from ...errors import InvalidParameterError, StorageError

__all__ = ["PAGE_SIZE", "Pager", "PagerStats"]

PAGE_SIZE = 4096


@dataclass
class PagerStats:
    """Cumulative buffer-pool and disk counters."""

    hits: int = 0
    misses: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    def snapshot(self) -> "PagerStats":
        return PagerStats(self.hits, self.misses, self.disk_reads, self.disk_writes)

    def delta(self, earlier: "PagerStats") -> "PagerStats":
        """Counters accumulated since ``earlier``."""
        return PagerStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.disk_reads - earlier.disk_reads,
            self.disk_writes - earlier.disk_writes,
        )

    @property
    def page_reads(self) -> int:
        """Logical page reads (hits + misses) — the cost unit the
        page-cost experiment reports."""
        return self.hits + self.misses


class Pager:
    """Fixed-size pages in one file, behind an LRU pool.

    Parameters
    ----------
    path:
        Backing file; created if missing.
    cache_pages:
        Buffer-pool capacity in pages (>= 1).
    """

    def __init__(self, path: str, cache_pages: int = 256) -> None:
        if cache_pages < 1:
            raise InvalidParameterError("cache_pages must be >= 1")
        self.path = path
        self.cache_pages = cache_pages
        self.stats = PagerStats()
        # "r+b" (not "a+b"!) — append mode would force every write-back
        # to the end of the file regardless of the seek position
        if not os.path.exists(path):
            open(path, "xb").close()
        self._file = open(path, "r+b")
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            self._file.close()
            raise StorageError(
                f"{path}: size {size} is not a multiple of the page size"
            )
        self._n_pages = size // PAGE_SIZE
        # page_id -> bytearray; OrderedDict used as the LRU queue
        self._pool: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: set = set()
        self._closed = False

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    @property
    def n_pages(self) -> int:
        """Pages allocated so far."""
        return self._n_pages

    def allocate(self) -> int:
        """Allocate a fresh zeroed page; returns its page id."""
        self._check_open()
        page_id = self._n_pages
        self._n_pages += 1
        self._install(page_id, bytearray(PAGE_SIZE))
        self._dirty.add(page_id)
        return page_id

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #

    def read(self, page_id: int) -> bytes:
        """Page contents (immutable view for callers)."""
        return bytes(self._fetch(page_id))

    def write(self, page_id: int, data: bytes) -> None:
        """Replace a page's contents (must be exactly one page)."""
        self._check_open()
        if len(data) != PAGE_SIZE:
            raise InvalidParameterError(
                f"page write must be exactly {PAGE_SIZE} bytes, got {len(data)}"
            )
        self._check_page_id(page_id)
        if page_id in self._pool:
            self._pool[page_id][:] = data
            self._pool.move_to_end(page_id)
        else:
            self._install(page_id, bytearray(data))
        self._dirty.add(page_id)

    def _fetch(self, page_id: int) -> bytearray:
        self._check_open()
        self._check_page_id(page_id)
        if page_id in self._pool:
            self.stats.hits += 1
            self._pool.move_to_end(page_id)
            return self._pool[page_id]
        self.stats.misses += 1
        self.stats.disk_reads += 1
        self._file.seek(page_id * PAGE_SIZE)
        data = bytearray(self._file.read(PAGE_SIZE))
        if len(data) < PAGE_SIZE:  # allocated but never evicted/written
            data.extend(b"\x00" * (PAGE_SIZE - len(data)))
        self._install(page_id, data)
        return data

    def _install(self, page_id: int, data: bytearray) -> None:
        self._pool[page_id] = data
        self._pool.move_to_end(page_id)
        while len(self._pool) > self.cache_pages:
            victim, victim_data = self._pool.popitem(last=False)
            if victim in self._dirty:
                self._write_back(victim, victim_data)

    def _write_back(self, page_id: int, data: bytearray) -> None:
        self.stats.disk_writes += 1
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(data)
        self._dirty.discard(page_id)

    # ------------------------------------------------------------------ #
    # cache control
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Write back every dirty page (pool keeps its contents)."""
        self._check_open()
        for page_id in sorted(self._dirty):
            self._write_back(page_id, self._pool[page_id])
        self._file.flush()

    def drop_cache(self) -> None:
        """Flush, then empty the buffer pool — the exact 'cold cache'."""
        self.flush()
        self._pool.clear()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        self._file.close()
        self._pool.clear()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("pager is closed")

    def _check_page_id(self, page_id: int) -> None:
        if not (0 <= page_id < self._n_pages):
            raise InvalidParameterError(
                f"page id {page_id} out of range [0, {self._n_pages})"
            )

"""Page file with an LRU buffer pool, page checksums, and a WAL.

All MiniDB structures live in fixed-size pages of one file.  The pager is
the only component that touches the file, so its counters account for
every logical and physical I/O in the system:

* ``hits`` / ``misses`` — buffer-pool lookups;
* ``disk_reads`` / ``disk_writes`` — actual file operations (main file
  and write-ahead log combined).

``drop_cache()`` empties the pool (writing back dirty pages first), which
is the exact, deterministic version of the paper's between-query OS-cache
flush.

Durability (docs/durability.md):

* every page reserves its last 4 bytes for a CRC32 **trailer**, stamped
  on each write to the main file and verified on each read from it —
  callers may only use the first ``PAGE_CAPACITY`` bytes;
* with ``wal=True`` dirty pages are appended to ``<path>.wal`` instead of
  being written in place; :meth:`commit` seals them atomically and
  :meth:`flush` transfers committed frames into the main file.  Opening a
  file with a leftover WAL replays its committed prefix first.
"""

from __future__ import annotations

import itertools
import logging
import os
import struct
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

from ...errors import CorruptionError, InvalidParameterError, StorageError
from ...obs.metrics import REGISTRY
from .wal import WriteAheadLog

__all__ = ["PAGE_SIZE", "PAGE_CAPACITY", "Pager", "PagerStats"]

logger = logging.getLogger("repro.storage")

PAGE_SIZE = 4096
_TRAILER = struct.Struct("<I")  # crc32 of the first PAGE_CAPACITY bytes
#: Bytes of a page available to callers (the trailer is the pager's).
PAGE_CAPACITY = PAGE_SIZE - _TRAILER.size


@dataclass
class PagerStats:
    """Cumulative buffer-pool and disk counters."""

    hits: int = 0
    misses: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    def snapshot(self) -> "PagerStats":
        return PagerStats(self.hits, self.misses, self.disk_reads, self.disk_writes)

    def delta(self, earlier: "PagerStats") -> "PagerStats":
        """Counters accumulated since ``earlier``."""
        return PagerStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.disk_reads - earlier.disk_reads,
            self.disk_writes - earlier.disk_writes,
        )

    @property
    def page_reads(self) -> int:
        """Logical page reads (hits + misses) — the cost unit the
        page-cost experiment reports."""
        return self.hits + self.misses


#: Distinguishes each pager's registry series within one process.
_pager_seq = itertools.count(1)

#: Process-wide durability counters (always on: corruption and replay
#: must be countable even with metrics disabled).
_CHECKSUM_FAILURES = REGISTRY.counter(
    "repro_minidb_checksum_failures_total",
    "Page or WAL-frame CRC32 verification failures",
    always_on=True,
)
_WAL_REPLAYS = REGISTRY.counter(
    "repro_minidb_wal_replays_total",
    "WAL recovery replays performed when (re)opening a page file",
    always_on=True,
)
_WAL_FRAMES_REPLAYED = REGISTRY.counter(
    "repro_minidb_wal_frames_replayed_total",
    "Committed WAL frames transferred into main files during recovery",
    always_on=True,
)


class Pager:
    """Fixed-size pages in one file, behind an LRU pool.

    Parameters
    ----------
    path:
        Backing file; created if missing.  With ``wal=True`` a sibling
        ``<path>.wal`` file holds in-flight transactions; it is replayed
        (committed prefix only) when reopening after a crash and removed
        on clean :meth:`close`.
    cache_pages:
        Buffer-pool capacity in pages (>= 1).
    checksums:
        Stamp/verify the CRC32 page trailer (on by default).
    wal:
        Route write-backs through the write-ahead log so multi-page
        operations can :meth:`commit` atomically (on by default).
    fsync:
        Issue real ``fsync`` barriers at commit/flush points.
    opener:
        ``(path, mode) -> file`` hook used for both files, so the fault
        harness (:mod:`repro.storage.faults`) can fail, tear, or freeze
        any I/O.
    """

    def __init__(
        self,
        path: str,
        cache_pages: int = 256,
        checksums: bool = True,
        wal: bool = True,
        fsync: bool = False,
        opener: Optional[Callable] = None,
    ) -> None:
        if cache_pages < 1:
            raise InvalidParameterError("cache_pages must be >= 1")
        self.path = path
        self.cache_pages = cache_pages
        self.checksums = checksums
        self.fsync = fsync
        self._opener = opener or _default_opener
        # counters live in the metrics registry (one labeled series per
        # pager instance); ``self.stats`` synthesizes PagerStats from
        # them.  always_on: these double as functional state — EXPLAIN
        # deltas and the page-cost experiment read them.
        labels = {"backend": "minidb", "pager": str(next(_pager_seq))}
        self._c_hits = REGISTRY.counter(
            "repro_minidb_pool_hits_total",
            "Buffer-pool lookups served from memory", labels,
            always_on=True,
        )
        self._c_misses = REGISTRY.counter(
            "repro_minidb_pool_misses_total",
            "Buffer-pool lookups that had to read the file", labels,
            always_on=True,
        )
        self._c_disk_reads = REGISTRY.counter(
            "repro_minidb_disk_reads_total",
            "Physical page reads (main file or WAL)", labels,
            always_on=True,
        )
        self._c_disk_writes = REGISTRY.counter(
            "repro_minidb_disk_writes_total",
            "Physical page writes (main file or WAL)", labels,
            always_on=True,
        )
        # "r+b" (not "a+b"!) — append mode would force every write-back
        # to the end of the file regardless of the seek position
        if not os.path.exists(path):
            self._opener(path, "xb").close()
        self._file = self._opener(path, "r+b")
        self.wal: Optional[WriteAheadLog] = None
        if wal:
            try:
                self.wal = WriteAheadLog(
                    path + ".wal", PAGE_SIZE, fsync=fsync, opener=self._opener
                )
            except BaseException:
                self._file.close()
                raise
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        if size % PAGE_SIZE != 0:
            # a torn append at the end of the main file: recoverable when
            # the WAL holds the page's committed image, fatal otherwise
            if self.wal is not None and not self.wal.is_empty:
                size -= size % PAGE_SIZE
                self._file.truncate(size)
            else:
                self._file.close()
                if self.wal is not None:
                    # don't leave behind the (empty) WAL just created
                    # for a file that is not a page file at all
                    self.wal.close(delete=self.wal.is_empty)
                raise StorageError(
                    f"{path}: size {size} is not a multiple of the page size"
                )
        self._n_pages = size // PAGE_SIZE
        if self.wal is not None:
            self._n_pages = max(self._n_pages, self.wal.max_committed_page + 1)
        # page_id -> bytearray; OrderedDict used as the LRU queue
        self._pool: "OrderedDict[int, bytearray]" = OrderedDict()
        self._dirty: set = set()
        self._closed = False
        self._stable_n_pages = self._n_pages
        if self.wal is not None and not self.wal.is_empty:
            self._replay_wal()

    def _replay_wal(self) -> None:
        """Transfer committed WAL frames into the main file (idempotent:
        the WAL is only truncated after the main file is safely updated)."""
        pages = list(self.wal.committed_pages())
        logger.info(
            "WAL replay: transferring %d committed frame(s) into %s",
            len(pages), self.path,
        )
        for page_id in pages:
            self._write_main(page_id, self.wal.read(page_id))
        self._file.flush()
        if self.fsync:
            self._fsync(self._file)
        self.wal.reset()
        _WAL_REPLAYS.inc()
        _WAL_FRAMES_REPLAYED.inc(len(pages))
        from ...obs import recorder as flight

        flight.record(
            "wal_replay", os.path.basename(self.path),
            frames=len(pages),
        )

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    @property
    def n_pages(self) -> int:
        """Pages allocated so far."""
        return self._n_pages

    @property
    def stats(self) -> PagerStats:
        """Point-in-time :class:`PagerStats` read from this pager's
        registry counters.  Each access returns a fresh, immutable-by-
        convention snapshot, so ``stats`` / ``stats.delta(earlier)``
        arithmetic is race-free even while other threads keep counting.
        """
        return PagerStats(
            hits=self._c_hits.value,
            misses=self._c_misses.value,
            disk_reads=self._c_disk_reads.value,
            disk_writes=self._c_disk_writes.value,
        )

    def allocate(self) -> int:
        """Allocate a fresh zeroed page; returns its page id."""
        self._check_open()
        page_id = self._n_pages
        self._n_pages += 1
        self._install(page_id, bytearray(PAGE_SIZE))
        self._dirty.add(page_id)
        return page_id

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #

    def read(self, page_id: int) -> bytes:
        """Page contents (immutable view for callers)."""
        return bytes(self._fetch(page_id))

    def write(self, page_id: int, data: bytes) -> None:
        """Replace a page's contents (must be exactly one page).

        Only the first :data:`PAGE_CAPACITY` bytes belong to the caller;
        the trailer is overwritten with the checksum on disk writes.
        """
        self._check_open()
        if len(data) != PAGE_SIZE:
            raise InvalidParameterError(
                f"page write must be exactly {PAGE_SIZE} bytes, got {len(data)}"
            )
        self._check_page_id(page_id)
        if page_id in self._pool:
            self._pool[page_id][:] = data
            self._pool.move_to_end(page_id)
        else:
            self._install(page_id, bytearray(data))
        self._dirty.add(page_id)

    def note_cached_reads(self, n: int) -> None:
        """Account ``n`` logical page reads served from an
        already-materialized columnar view or a batched page decode.

        The logical cost ledger (``page_reads = hits + misses``) counts
        one read per serve, exactly as a row-at-a-time reader touching a
        resident page would; the physical bytes were read once when the
        block was built.
        """
        self._check_open()
        if n > 0:
            self._c_hits.inc(n)

    def note_view_read(self, page_id: int) -> None:
        """Account one logical page read whose bytes came from an mmap
        of the main file (columnar view build): a pool hit when the page
        is resident, otherwise a miss plus a physical read — the same
        ledger a pool-routed read of that page would produce.  The page
        is *not* installed into the pool (the view bypasses it on
        purpose, so big chain walks cannot evict hot index pages).
        """
        self._check_open()
        if page_id in self._pool:
            self._c_hits.inc()
        else:
            self._c_misses.inc()
            self._c_disk_reads.inc()

    def _fetch(self, page_id: int) -> bytearray:
        self._check_open()
        self._check_page_id(page_id)
        if page_id in self._pool:
            self._c_hits.inc()
            self._pool.move_to_end(page_id)
            return self._pool[page_id]
        self._c_misses.inc()
        self._c_disk_reads.inc()
        if self.wal is not None and page_id in self.wal:
            data = bytearray(self.wal.read(page_id))
        else:
            self._file.seek(page_id * PAGE_SIZE)
            data = bytearray(self._file.read(PAGE_SIZE))
            if len(data) < PAGE_SIZE:  # allocated but never evicted/written
                data.extend(b"\x00" * (PAGE_SIZE - len(data)))
            self._verify(page_id, data)
        self._install(page_id, data)
        return data

    def _install(self, page_id: int, data: bytearray) -> None:
        self._pool[page_id] = data
        self._pool.move_to_end(page_id)
        while len(self._pool) > self.cache_pages:
            victim, victim_data = self._pool.popitem(last=False)
            if victim in self._dirty:
                self._write_back(victim, victim_data)

    def _write_back(self, page_id: int, data: bytearray) -> None:
        self._c_disk_writes.inc()
        if self.wal is not None:
            self.wal.append(page_id, bytes(data))
        else:
            self._write_main(page_id, data)
        self._dirty.discard(page_id)

    def _write_main(self, page_id: int, data) -> None:
        self._file.seek(page_id * PAGE_SIZE)
        self._file.write(self._stamp(data))

    # ------------------------------------------------------------------ #
    # checksums
    # ------------------------------------------------------------------ #

    def _stamp(self, data) -> bytes:
        """Return ``data`` with the CRC32 trailer filled in."""
        if not self.checksums:
            return bytes(data)
        buf = bytearray(data)
        crc = zlib.crc32(bytes(buf[:PAGE_CAPACITY]))
        _TRAILER.pack_into(buf, PAGE_CAPACITY, crc)
        return bytes(buf)

    def _verify(self, page_id: int, data: bytearray) -> None:
        if not self.checksums:
            return
        if not any(data):
            return  # a hole / never-written page: all zeros is valid
        (stored,) = _TRAILER.unpack_from(data, PAGE_CAPACITY)
        actual = zlib.crc32(bytes(data[:PAGE_CAPACITY]))
        if stored != actual:
            _CHECKSUM_FAILURES.inc()
            logger.error(
                "checksum mismatch: file=%s page=%d stored=%#010x "
                "computed=%#010x", self.path, page_id, stored, actual,
            )
            raise CorruptionError(
                f"{self.path}: page {page_id} checksum mismatch "
                f"(stored {stored:#010x}, computed {actual:#010x})"
            )

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    def commit(self) -> None:
        """Make everything written so far durable and atomic.

        With a WAL: append every dirty pool page as a frame and seal the
        batch with a commit record.  Without one: degrade to writing the
        dirty pages to the main file (no atomicity).
        """
        self._check_open()
        for page_id in sorted(self._dirty):
            if page_id in self._pool:
                self._write_back(page_id, self._pool[page_id])
        self._dirty.clear()
        if self.wal is not None:
            self.wal.commit()
        else:
            self._file.flush()
            if self.fsync:
                self._fsync(self._file)
        self._stable_n_pages = self._n_pages

    def rollback(self) -> None:
        """Discard all uncommitted page changes (pool and WAL tail)."""
        self._check_open()
        if self.wal is not None:
            self.wal.rollback()
        # drop the pool wholesale: any page may hold uncommitted bytes
        self._pool.clear()
        self._dirty.clear()
        self._n_pages = self._stable_n_pages

    # ------------------------------------------------------------------ #
    # cache control
    # ------------------------------------------------------------------ #

    def flush(self) -> None:
        """Commit, then transfer committed WAL frames to the main file
        (pool keeps its contents).  Without a WAL this just writes back
        every dirty page, as before."""
        self._check_open()
        if self.wal is None:
            for page_id in sorted(self._dirty):
                self._write_back(page_id, self._pool[page_id])
            self._file.flush()
            return
        if not self._dirty and self.wal.is_empty:
            return  # nothing to persist
        self.commit()
        for page_id in self.wal.committed_pages():
            self._c_disk_writes.inc()
            self._write_main(page_id, self.wal.read(page_id))
        self._file.flush()
        if self.fsync:
            self._fsync(self._file)
        self.wal.reset()

    @property
    def has_uncommitted(self) -> bool:
        """True when dirty pool pages or unsealed WAL frames exist."""
        if self._dirty:
            return True
        return self.wal is not None and not self.wal.is_empty

    def drop_cache(self) -> None:
        """Flush, then empty the buffer pool — the exact 'cold cache'."""
        self.flush()
        self._pool.clear()

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.flush()
            clean = True
        finally:
            self._closed = True
            self._file.close()
            self._pool.clear()
            self._dirty.clear()
        if self.wal is not None:
            # after a clean flush the WAL holds nothing: remove it so a
            # closed database is exactly one self-contained file
            self.wal.close(delete=clean)

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _fsync(file) -> None:
        fsync = getattr(file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            os.fsync(file.fileno())

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("pager is closed")

    def _check_page_id(self, page_id: int) -> None:
        if not (0 <= page_id < self._n_pages):
            raise InvalidParameterError(
                f"page id {page_id} out of range [0, {self._n_pages})"
            )


def _default_opener(path: str, mode: str):
    return open(path, mode)

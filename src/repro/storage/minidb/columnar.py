"""Columnar read views over MiniDB heap chains and B+tree leaves.

The scalar read path decodes one row per :class:`struct.Struct` call —
per-row Python that dominates query time (EXPERIMENTS.md, PR 8 profile).
This module replaces it with array-at-once decodes of the **unchanged**
page byte layouts:

* :class:`ColumnarView` — a per-database cache of whole heap chains as
  ``(n_rows, width)`` float64 blocks.  A block is built once per open
  (and after every invalidation) by walking the chain and decoding each
  page's row region with one ``np.frombuffer`` instead of ``n`` struct
  unpacks.  When the pager has no uncommitted state the bytes are read
  through an mmap of the main file (bulk, pool-bypassing); otherwise
  each page is fetched through the buffer pool so uncommitted appends
  stay visible.  The view must be invalidated on every write path,
  checkpoint, and cold-cache request (the store does this).

* :func:`probe_index_block` — a vectorized B+tree leading-column probe:
  leaf pages are decoded with one structured ``frombuffer`` each, cut
  with ``searchsorted`` on the leading key column (early exit at the
  first leaf that crosses the bound), and the matching entries' heap
  rows are gathered **per distinct page** instead of one random read
  per row.

Page accounting keeps the paper's logical cost model intact: every
serve still charges one logical page read per chain page (cached view)
or per matching index entry (batched gather) — see
:meth:`Pager.note_cached_reads` / :meth:`Pager.note_view_read` — so the
page-cost experiments (Figures 19-20 regimes) report the same
``page_reads`` a row-at-a-time reader would, while physical I/O drops.
"""

from __future__ import annotations

import mmap
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ...errors import CorruptionError, StorageError
from .btree import _LEAF_HEADER
from .heapfile import _HEADER as _HEAP_HEADER
from .heapfile import HeapFile
from .pager import PAGE_CAPACITY, PAGE_SIZE

__all__ = ["ColumnarView", "probe_index_block"]


class _CachedBlock:
    __slots__ = ("first_page", "n_rows", "n_pages", "block")

    def __init__(self, first_page: int, n_rows: int, n_pages: int,
                 block: np.ndarray) -> None:
        self.first_page = first_page
        self.n_rows = n_rows
        self.n_pages = n_pages
        self.block = block


class ColumnarView:
    """Cache of heap chains decoded into contiguous float64 blocks.

    Blocks are read-only (served zero-copy to every query) and keyed by
    table name; the table object is re-resolved on every access so the
    view survives catalog reloads (rollback).  A cached entry is used
    only while the heap's ``(first_page, n_rows)`` still match — a
    safety net under the store's explicit :meth:`invalidate` calls.
    """

    def __init__(self, db) -> None:
        self._db = db
        self._blocks: Dict[str, _CachedBlock] = {}

    def invalidate(self) -> None:
        """Drop every cached block (appends, checkpoints, cold cache)."""
        self._blocks.clear()

    def table_block(self, name: str, guard=None) -> np.ndarray:
        """The table's full heap as an ``(n_rows, width)`` block.

        A cached serve charges one logical page read (pool hit) per
        chain page — identical to the ledger of a fully warm
        buffer-pool scan.
        """
        table = self._db.table(name)
        heap = table.heap
        cached = self._blocks.get(name)
        if (
            cached is not None
            and cached.first_page == heap.first_page
            and cached.n_rows == heap.n_rows
        ):
            if guard is not None:
                guard.tick()
            heap.pager.note_cached_reads(cached.n_pages)
            return cached.block
        block, n_pages = _decode_heap_chain(heap, guard)
        self._blocks[name] = _CachedBlock(
            heap.first_page, heap.n_rows, n_pages, block
        )
        return block


def _decode_heap_chain(
    heap: HeapFile, guard=None
) -> Tuple[np.ndarray, int]:
    """Walk one heap chain into a fresh ``(n_rows, width)`` block.

    When the pager holds no uncommitted state every committed byte is in
    the main file, so the chain is read through an mmap (bulk I/O, no
    pool churn) with per-page CRC verification; pages the mmap cannot
    serve — uncommitted state, or a chain page past the file end — go
    through the buffer pool as before.
    """
    pager = heap.pager
    width = heap.width
    out = np.empty((heap.n_rows, width), dtype=float)
    mapped = None
    if not pager.has_uncommitted:
        try:
            mapped = mmap.mmap(
                pager._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except (AttributeError, ValueError, OSError):
            # empty file, a file-like without a real descriptor (fault
            # harness), or mmap unavailable: fall back to the pool path
            mapped = None
    try:
        file_pages = (len(mapped) // PAGE_SIZE) if mapped is not None else 0
        pos = 0
        n_pages = 0
        page_id = heap.first_page
        while page_id != -1:
            if guard is not None:
                guard.tick()
            if mapped is not None and page_id < file_pages:
                off = page_id * PAGE_SIZE
                data = mapped[off : off + PAGE_SIZE]
                pager._verify(page_id, data)
                pager.note_view_read(page_id)
            else:
                data = pager.read(page_id)
            count, next_page = _HEAP_HEADER.unpack_from(data, 0)
            if (
                count < 0
                or _HEAP_HEADER.size + count * width * 8 > PAGE_CAPACITY
            ):
                raise CorruptionError(
                    f"{pager.path}: heap page {page_id} claims {count} "
                    f"rows of width {width}"
                )
            if count:
                if pos + count > out.shape[0]:
                    raise StorageError(
                        f"{pager.path}: heap chain holds more rows than "
                        f"the catalog's {out.shape[0]}"
                    )
                out[pos : pos + count] = np.frombuffer(
                    data, dtype="<f8", count=count * width,
                    offset=_HEAP_HEADER.size,
                ).reshape(count, width)
                pos += count
            n_pages += 1
            page_id = next_page
    finally:
        if mapped is not None:
            mapped.close()
    if pos != out.shape[0]:
        raise StorageError(
            f"{pager.path}: heap chain holds {pos} rows but the catalog "
            f"records {out.shape[0]}"
        )
    out.flags.writeable = False
    return out, n_pages


def probe_index_block(
    table,
    index_name: str,
    first_max: float,
    v_mask: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    guard=None,
) -> np.ndarray:
    """Vectorized leading-column index probe with batched heap gather.

    Returns an ``(m, key_width + 4)`` float64 block — index key columns
    followed by the rows' identifying timestamps, in leaf-chain (key)
    order: the same layout the scalar probe assembles per row.
    ``v_mask`` (keys block -> bool mask) applies the value pushdown
    before any heap fetch, mirroring the scalar path where only
    *matching* entries pay the random heap read.
    """
    tree = table.index(index_name)
    key_width = tree.key_width
    keys, rid_pages, rid_slots = _leaf_entries_upto(tree, first_max, guard)
    if v_mask is not None and keys.shape[0]:
        mask = v_mask(keys)
        keys = keys[mask]
        rid_pages = rid_pages[mask]
        rid_slots = rid_slots[mask]
    ident = _gather_ident(table.heap, rid_pages, rid_slots, key_width, guard)
    out = np.empty((keys.shape[0], key_width + 4))
    out[:, :key_width] = keys
    out[:, key_width:] = ident
    return out


def _leaf_entries_upto(
    tree, first_max: float, guard=None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decode leaf-chain entries with leading key column <= ``first_max``.

    One structured ``frombuffer`` per leaf page; the cut inside a leaf is
    a ``searchsorted`` on the leading column (keys are lexicographically
    sorted, so the leading column is non-decreasing across the chain and
    the walk stops at the first leaf that crosses the bound).  Leaf pages
    are read through the buffer pool, so index-page accounting is
    unchanged from the scalar walk.
    """
    key_width = tree.key_width
    entry_dtype = np.dtype(
        [("key", "<f8", (key_width,)), ("page", "<i4"), ("slot", "<i4")]
    )
    keys_parts, page_parts, slot_parts = [], [], []
    pager = tree.pager
    page_id = tree._leftmost_leaf()
    while page_id != -1:
        if guard is not None:
            guard.tick()
        data = pager.read(page_id)
        _kind, n, next_leaf = _LEAF_HEADER.unpack_from(data, 0)
        if n:
            entries = np.frombuffer(
                data, dtype=entry_dtype, count=n, offset=_LEAF_HEADER.size
            )
            keys = entries["key"]
            cut = int(
                np.searchsorted(keys[:, 0], first_max, side="right")
            )
            if cut:
                keys_parts.append(keys[:cut].astype(float))
                page_parts.append(entries["page"][:cut].astype(np.int64))
                slot_parts.append(entries["slot"][:cut].astype(np.int64))
            if cut < n:
                break  # every later entry's leading column exceeds the bound
        page_id = next_leaf
    if not keys_parts:
        return (
            np.empty((0, key_width)),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(keys_parts),
        np.concatenate(page_parts),
        np.concatenate(slot_parts),
    )


def _gather_ident(
    heap: HeapFile,
    rid_pages: np.ndarray,
    rid_slots: np.ndarray,
    key_width: int,
    guard=None,
) -> np.ndarray:
    """The ``(m, 4)`` identifying columns for the given rids, aligned
    with the input order.

    Rows are gathered per distinct heap page: one pool read decodes the
    whole page, and the page's other requested slots are charged as pool
    hits via :meth:`Pager.note_cached_reads` — the logical per-row page
    cost of the scalar path (Figures 19-20) with one physical decode per
    page instead of one per row.
    """
    n = rid_pages.shape[0]
    out = np.empty((n, 4))
    if n == 0:
        return out
    pager = heap.pager
    width = heap.width
    order = np.argsort(rid_pages, kind="stable")
    sorted_pages = rid_pages[order]
    starts = np.flatnonzero(np.r_[True, np.diff(sorted_pages) != 0])
    bounds = np.append(starts, n)
    for gi in range(starts.shape[0]):
        group = order[bounds[gi] : bounds[gi + 1]]
        page_id = int(sorted_pages[bounds[gi]])
        if guard is not None:
            guard.tick()
        data = pager.read(page_id)
        count, _next = _HEAP_HEADER.unpack_from(data, 0)
        rows = np.frombuffer(
            data, dtype="<f8", count=count * width, offset=_HEAP_HEADER.size
        ).reshape(count, width)
        slots = rid_slots[group]
        if slots.shape[0] and int(slots.max()) >= count:
            raise StorageError(
                f"{pager.path}: index rid slot {int(slots.max())} exceeds "
                f"page {page_id}'s {count} rows"
            )
        out[group] = rows[slots, key_width : key_width + 4]
        if group.shape[0] > 1:
            pager.note_cached_reads(group.shape[0] - 1)
    return out

"""Heap files: chained pages of fixed-width float rows.

Page layout (little-endian)::

    [0:4)   int32  number of rows in this page
    [4:8)   int32  next page id (-1 = end of chain)
    [8:..)  rows, each ``width`` float64 values

A row id (:class:`RID`) is ``(page_id, slot)``; random access costs one
page read — exactly the cost model that makes secondary-index lookups
expensive for large result sets (Figures 19-20).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

import numpy as np

from ...errors import InvalidParameterError, StorageError
from .pager import PAGE_CAPACITY, PAGE_SIZE, Pager

__all__ = ["HeapFile", "RID"]

_HEADER = struct.Struct("<ii")  # n_rows, next_page


@dataclass(frozen=True)
class RID:
    """Row id: page and slot."""

    page_id: int
    slot: int


class HeapFile:
    """An append-only table of fixed-width float rows.

    Parameters
    ----------
    pager:
        Shared pager.
    width:
        Floats per row (1..502 so at least one row fits a page).
    first_page:
        Existing chain head to reopen, or ``None`` to create a new chain.
    last_page / n_rows:
        Persisted tail state when reopening (kept in the catalog).
    """

    def __init__(
        self,
        pager: Pager,
        width: int,
        first_page: int = -1,
        last_page: int = -1,
        n_rows: int = 0,
    ) -> None:
        if width < 1:
            raise InvalidParameterError("row width must be >= 1")
        self.rows_per_page = (PAGE_CAPACITY - _HEADER.size) // (8 * width)
        if self.rows_per_page < 1:
            raise InvalidParameterError(
                f"row width {width} does not fit a {PAGE_SIZE}-byte page"
            )
        self.pager = pager
        self.width = width
        self._row = struct.Struct("<" + "d" * width)
        self.first_page = first_page
        self.last_page = last_page
        self.n_rows = n_rows
        if self.first_page == -1:
            self.first_page = pager.allocate()
            self.last_page = self.first_page
            self._write_header(self.first_page, 0, -1)

    # ------------------------------------------------------------------ #
    # page helpers
    # ------------------------------------------------------------------ #

    def _read_header(self, page: bytes) -> Tuple[int, int]:
        return _HEADER.unpack_from(page, 0)

    def _write_header(self, page_id: int, n_rows: int, next_page: int) -> None:
        page = bytearray(self.pager.read(page_id))
        _HEADER.pack_into(page, 0, n_rows, next_page)
        self.pager.write(page_id, bytes(page))

    def _row_offset(self, slot: int) -> int:
        return _HEADER.size + slot * 8 * self.width

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def append(self, row: Sequence[float]) -> RID:
        """Append one row; returns its rid."""
        if len(row) != self.width:
            raise InvalidParameterError(
                f"expected {self.width} values, got {len(row)}"
            )
        page = bytearray(self.pager.read(self.last_page))
        count, next_page = self._read_header(page)
        if count >= self.rows_per_page:
            new_page = self.pager.allocate()
            self._write_header(new_page, 0, -1)
            _HEADER.pack_into(page, 0, count, new_page)
            self.pager.write(self.last_page, bytes(page))
            self.last_page = new_page
            page = bytearray(self.pager.read(new_page))
            count, next_page = 0, -1
        self._row.pack_into(page, self._row_offset(count), *row)
        _HEADER.pack_into(page, 0, count + 1, next_page)
        self.pager.write(self.last_page, bytes(page))
        rid = RID(self.last_page, count)
        self.n_rows += 1
        return rid

    def append_many(self, rows) -> None:
        """Append many rows, packing whole pages at a time.

        Produces byte-identical pages to an :meth:`append` loop — the
        tail page is topped up first, then each subsequent page is
        filled with ``rows_per_page`` rows and linked into the chain —
        but touches each page once instead of once per row.
        """
        arr = np.ascontiguousarray(rows, dtype="<f8")
        if arr.ndim != 2 or arr.shape[1] != self.width:
            raise InvalidParameterError(
                f"expected rows of width {self.width}, got shape {arr.shape}"
            )
        n = arr.shape[0]
        if n == 0:
            return
        row_bytes = 8 * self.width
        # top up the tail page
        page = bytearray(self.pager.read(self.last_page))
        count, next_page = self._read_header(page)
        take = min(self.rows_per_page - count, n)
        pos = 0
        if take > 0:
            off = self._row_offset(count)
            page[off : off + take * row_bytes] = arr[:take].tobytes()
            count += take
            pos = take
        # then whole new pages, linking each into the chain
        while pos < n:
            new_page = self.pager.allocate()
            self._write_header(new_page, 0, -1)
            _HEADER.pack_into(page, 0, count, new_page)
            self.pager.write(self.last_page, bytes(page))
            self.last_page = new_page
            chunk = arr[pos : pos + self.rows_per_page]
            page = bytearray(self.pager.read(new_page))
            off = self._row_offset(0)
            page[off : off + chunk.shape[0] * row_bytes] = chunk.tobytes()
            count, next_page = chunk.shape[0], -1
            pos += chunk.shape[0]
        _HEADER.pack_into(page, 0, count, next_page)
        self.pager.write(self.last_page, bytes(page))
        self.n_rows += n

    def get(self, rid: RID) -> Tuple[float, ...]:
        """Fetch one row by rid (one page read)."""
        page = self.pager.read(rid.page_id)
        count, _next = self._read_header(page)
        if not (0 <= rid.slot < count):
            raise StorageError(f"invalid rid {rid}")
        return self._row.unpack_from(page, self._row_offset(rid.slot))

    def scan(self) -> Iterator[Tuple[RID, Tuple[float, ...]]]:
        """Sequential scan in insertion order."""
        page_id = self.first_page
        while page_id != -1:
            page = self.pager.read(page_id)
            count, next_page = self._read_header(page)
            for slot in range(count):
                yield RID(page_id, slot), self._row.unpack_from(
                    page, self._row_offset(slot)
                )
            page_id = next_page

    def n_pages(self) -> int:
        """Pages in the chain (walks the chain)."""
        pages = 0
        page_id = self.first_page
        while page_id != -1:
            pages += 1
            _count, page_id = self._read_header(self.pager.read(page_id))
        return pages

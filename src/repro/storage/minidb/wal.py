"""Physical write-ahead log for the MiniDB pager.

The WAL makes multi-page operations atomic: instead of updating the main
page file in place, the pager appends **after-images** of dirty pages to
``<path>.wal`` and seals each batch with a commit record.  Only committed
frames are ever copied back into the main file (a *checkpoint transfer*),
so a crash at any instant leaves one of two recoverable states:

* the main file untouched plus a WAL whose committed prefix replays the
  transaction, or
* the main file partially/fully updated plus the same WAL — replay is
  idempotent.

File layout (little-endian)::

    header:  8s magic "MDBWAL01" | i32 page_size
    frame:   u8 kind=1 | i32 page_id | u32 crc32(payload) | payload
    commit:  u8 kind=2 | i32 sequence | u32 crc32(first 5 bytes)

Recovery scans the file from the header; a short read, unknown kind, or
CRC mismatch ends the scan, and everything after the last intact commit
record is discarded (truncated).  That tail is by construction exactly
the uncommitted/torn suffix, so recovery never loses committed data and
never resurrects a partial transaction.
"""

from __future__ import annotations

import logging
import os
import struct
import zlib
from typing import Callable, Dict, Iterable, Optional, Tuple

from ...errors import CorruptionError, RecoveryError
from ...obs.metrics import REGISTRY

__all__ = ["WriteAheadLog"]

logger = logging.getLogger("repro.storage")

_WAL_COMMITS = REGISTRY.counter(
    "repro_minidb_wal_commits_total",
    "Commit records sealed in MiniDB write-ahead logs",
    always_on=True,
)
_WAL_FRAMES = REGISTRY.counter(
    "repro_minidb_wal_frames_total",
    "Page after-images appended to MiniDB write-ahead logs",
    always_on=True,
)
_WAL_FRAME_CORRUPTION = REGISTRY.counter(
    "repro_minidb_checksum_failures_total",
    "Page or WAL-frame CRC32 verification failures",
    always_on=True,
)

_MAGIC = b"MDBWAL01"
_HEADER = struct.Struct("<8si")  # magic, page_size
_RECORD = struct.Struct("<BiI")  # kind, page_id | sequence, crc32
_FRAME = 1
_COMMIT = 2


def _default_opener(path: str, mode: str):
    # buffering=0 so every logical write is one OS write — the unit the
    # fault-injection harness counts and tears
    return open(path, mode, buffering=0)


class WriteAheadLog:
    """Append-only page log with commit records (see module docstring).

    Parameters
    ----------
    path:
        Log file; created (with a fresh header) if missing.
    page_size:
        Size of every frame payload; must match the pager's.
    fsync:
        Issue a real ``fsync`` after each commit record.  Off by default:
        the crash model exercised by the test harness is at the file-API
        level, and tests/benchmarks should not pay for disk barriers.
    opener:
        ``(path, mode) -> file`` hook so the fault harness can interpose.
    """

    def __init__(
        self,
        path: str,
        page_size: int,
        fsync: bool = False,
        opener: Optional[Callable] = None,
    ) -> None:
        self.path = path
        self.page_size = page_size
        self.fsync = fsync
        opener = opener or _default_opener
        fresh = not os.path.exists(path)
        if fresh:
            opener(path, "xb").close()
        self._file = opener(path, "r+b")
        # page_id -> (payload offset, crc) for frames sealed by a commit
        self._committed: Dict[int, Tuple[int, int]] = {}
        # same, for frames of the in-flight transaction
        self._pending: Dict[int, Tuple[int, int]] = {}
        self._sequence = 0
        if fresh:
            self._file.write(_HEADER.pack(_MAGIC, page_size))
            self._commit_end = self._end = _HEADER.size
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    def _recover(self) -> None:
        """Rebuild the committed index; truncate the uncommitted tail."""
        self._file.seek(0, os.SEEK_END)
        file_size = self._file.tell()
        self._file.seek(0)
        header = self._file.read(_HEADER.size)
        if len(header) < _HEADER.size:
            # torn header: the log never held a commit, start over
            logger.warning(
                "WAL recovery: %s has a torn header (%d bytes), "
                "reinitializing", self.path, len(header),
            )
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(_HEADER.pack(_MAGIC, self.page_size))
            self._commit_end = self._end = _HEADER.size
            return
        magic, page_size = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise RecoveryError(f"{self.path}: not a MiniDB WAL file")
        if page_size != self.page_size:
            raise RecoveryError(
                f"{self.path}: WAL page size {page_size} does not match "
                f"pager page size {self.page_size}"
            )
        pos = _HEADER.size
        commit_end = pos
        pending: Dict[int, Tuple[int, int]] = {}
        while True:
            rec = self._file.read(_RECORD.size)
            if len(rec) < _RECORD.size:
                break
            kind, field, crc = _RECORD.unpack(rec)
            if kind == _FRAME:
                payload = self._file.read(self.page_size)
                if len(payload) < self.page_size:
                    break  # torn frame
                if zlib.crc32(payload) != crc:
                    break  # torn/corrupt frame
                pending[field] = (pos + _RECORD.size, crc)
                pos += _RECORD.size + self.page_size
            elif kind == _COMMIT:
                if zlib.crc32(rec[:5]) != crc:
                    break  # torn commit record
                self._committed.update(pending)
                pending.clear()
                self._sequence = field
                pos += _RECORD.size
                commit_end = pos
            else:
                break  # garbage
        discarded = file_size - commit_end
        if discarded > 0:
            logger.warning(
                "WAL recovery: %s discarding %d byte(s) of uncommitted/"
                "torn tail after offset %d", self.path, discarded,
                commit_end,
            )
        if self._committed:
            logger.info(
                "WAL recovery: %s holds %d committed frame(s) "
                "(sequence %d)", self.path, len(self._committed),
                self._sequence,
            )
        self._file.truncate(commit_end)
        self._commit_end = self._end = commit_end

    # ------------------------------------------------------------------ #
    # logging
    # ------------------------------------------------------------------ #

    def append(self, page_id: int, data: bytes) -> None:
        """Log one page after-image (uncommitted until :meth:`commit`)."""
        if len(data) != self.page_size:
            raise RecoveryError(
                f"WAL frame must be {self.page_size} bytes, got {len(data)}"
            )
        crc = zlib.crc32(data)
        self._file.seek(self._end)
        # one write call per frame: a torn frame is a prefix of this record
        self._file.write(_RECORD.pack(_FRAME, page_id, crc) + data)
        self._pending[page_id] = (self._end + _RECORD.size, crc)
        self._end += _RECORD.size + self.page_size
        _WAL_FRAMES.inc()

    def commit(self) -> None:
        """Seal every pending frame with a commit record (+ optional fsync)."""
        if not self._pending:
            return
        self._sequence += 1
        rec = _RECORD.pack(_COMMIT, self._sequence, 0)
        rec = rec[:5] + struct.pack("<I", zlib.crc32(rec[:5]))
        self._file.seek(self._end)
        self._file.write(rec)
        self._file.flush()
        if self.fsync:
            self._fsync()
        self._end += _RECORD.size
        self._commit_end = self._end
        self._committed.update(self._pending)
        self._pending.clear()
        _WAL_COMMITS.inc()

    def rollback(self) -> None:
        """Discard the in-flight transaction's frames."""
        self._pending.clear()
        self._file.truncate(self._commit_end)
        self._end = self._commit_end

    def reset(self) -> None:
        """Empty the log (after its pages were transferred + fsynced)."""
        self._pending.clear()
        self._committed.clear()
        self._file.truncate(_HEADER.size)
        self._commit_end = self._end = _HEADER.size

    def _fsync(self) -> None:
        fsync = getattr(self._file, "fsync", None)
        if fsync is not None:
            fsync()
        else:
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pending or page_id in self._committed

    def read(self, page_id: int) -> bytes:
        """Latest logged image of a page (pending wins over committed)."""
        entry = self._pending.get(page_id) or self._committed.get(page_id)
        if entry is None:
            raise RecoveryError(f"page {page_id} is not in the WAL")
        offset, crc = entry
        self._file.seek(offset)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size or zlib.crc32(data) != crc:
            _WAL_FRAME_CORRUPTION.inc()
            logger.error(
                "WAL frame corrupt: file=%s page=%d offset=%d",
                self.path, page_id, offset,
            )
            raise CorruptionError(
                f"{self.path}: WAL frame for page {page_id} is corrupt"
            )
        return data

    def committed_pages(self) -> Iterable[int]:
        """Page ids with a committed frame (checkpoint-transfer work list)."""
        return sorted(self._committed)

    @property
    def max_committed_page(self) -> int:
        """Highest committed page id, or -1 when the log is empty."""
        return max(self._committed) if self._committed else -1

    @property
    def is_empty(self) -> bool:
        return not self._committed and not self._pending

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def close(self, delete: bool = False) -> None:
        """Close the log file; ``delete=True`` after a clean checkpoint."""
        try:
            self._file.close()
        finally:
            if delete and os.path.exists(self.path):
                os.unlink(self.path)

"""MiniDB catalog, tables, and indexes.

A database is one page file.  Page 0 anchors the **catalog**: a JSON
document (spanning a chain of pages) describing every table's heap chain,
row count, and indexes, plus a free-form metadata map.  ``checkpoint()``
persists the catalog and flushes dirty pages, after which the file can be
reopened cold.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...errors import InvalidParameterError, StorageError
from .btree import BPlusTree
from .heapfile import RID, HeapFile
from .pager import PAGE_SIZE, Pager, PagerStats

__all__ = ["MiniDatabase", "Table"]

_MAGIC = b"MINIDB01"
_HEAD = struct.Struct("<8sii")  # magic, total_len, next_page
_CONT = struct.Struct("<i")  # next_page


class Table:
    """One heap-backed table with optional B+tree indexes."""

    def __init__(self, db: "MiniDatabase", name: str, info: Dict) -> None:
        self._db = db
        self.name = name
        self._info = info
        self.heap = HeapFile(
            db.pager,
            info["width"],
            first_page=info["first_page"],
            last_page=info["last_page"],
            n_rows=info["n_rows"],
        )
        info["first_page"] = self.heap.first_page
        info["last_page"] = self.heap.last_page
        self._indexes: Dict[str, BPlusTree] = {}
        for iname, iinfo in info["indexes"].items():
            self._indexes[iname] = BPlusTree(
                db.pager, len(iinfo["key_cols"]), root=iinfo["root"]
            )

    @property
    def width(self) -> int:
        return self._info["width"]

    @property
    def n_rows(self) -> int:
        return self.heap.n_rows

    def insert(self, row: Sequence[float]) -> RID:
        """Append one row (indexes are NOT maintained; rebuild them)."""
        rid = self.heap.append(row)
        self._info["n_rows"] = self.heap.n_rows
        self._info["last_page"] = self.heap.last_page
        return rid

    def insert_many(self, rows) -> None:
        """Append many rows."""
        for row in rows:
            self.insert(row)

    def insert_indexed(self, row: Sequence[float]) -> RID:
        """Append one row and update every index incrementally."""
        rid = self.insert(row)
        for iname, tree in self._indexes.items():
            cols = self._info["indexes"][iname]["key_cols"]
            tree.insert(tuple(row[c] for c in cols), rid)
            self._info["indexes"][iname]["root"] = tree.root
        return rid

    def get(self, rid: RID) -> Tuple[float, ...]:
        return self.heap.get(rid)

    def scan(self) -> Iterator[Tuple[RID, Tuple[float, ...]]]:
        return self.heap.scan()

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #

    def create_index(self, name: str, key_cols: Sequence[int]) -> BPlusTree:
        """(Re)build a B+tree on the given column positions."""
        cols = [int(c) for c in key_cols]
        if not cols or any(not (0 <= c < self.width) for c in cols):
            raise InvalidParameterError(
                f"key columns {cols} invalid for width {self.width}"
            )
        entries = sorted(
            ((tuple(row[c] for c in cols), rid) for rid, row in self.scan()),
            key=lambda entry: entry[0],
        )
        tree = BPlusTree(self._db.pager, len(cols))
        tree.bulk_load(entries)
        self._indexes[name] = tree
        self._info["indexes"][name] = {"key_cols": cols, "root": tree.root}
        return tree

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def index(self, name: str) -> BPlusTree:
        if name not in self._indexes:
            raise InvalidParameterError(
                f"table {self.name!r} has no index {name!r}"
            )
        return self._indexes[name]

    def index_scan_leading(
        self, name: str, first_max: float
    ) -> Iterator[Tuple[Tuple[float, ...], RID]]:
        """Index entries with leading key column <= ``first_max``.

        Yields ``(key, rid)``; fetching the full row via :meth:`get` is
        the caller's (deliberately visible) random-I/O cost.
        """
        return self.index(name).scan_leading_upto(first_max)

    def index_pages(self) -> int:
        """Total pages across this table's indexes."""
        return sum(tree.n_pages() for tree in self._indexes.values())

    def heap_pages(self) -> int:
        """Pages in the heap chain."""
        return self.heap.n_pages()


class MiniDatabase:
    """A page file with a catalog of tables (see module docstring)."""

    def __init__(self, path: str, cache_pages: int = 256) -> None:
        self.pager = Pager(path, cache_pages=cache_pages)
        self._tables: Dict[str, Table] = {}
        self._catalog: Dict = {"tables": {}, "meta": {}}
        if self.pager.n_pages == 0:
            root = self.pager.allocate()
            assert root == 0
            self._write_catalog()
        else:
            self._read_catalog()
            for name, info in self._catalog["tables"].items():
                self._tables[name] = Table(self, name, info)

    # ------------------------------------------------------------------ #
    # catalog persistence
    # ------------------------------------------------------------------ #

    def _write_catalog(self) -> None:
        payload = json.dumps(self._catalog).encode()
        total = len(payload)
        # reuse the existing chain where possible
        chain: List[int] = [0]
        page = self.pager.read(0)
        magic, _len, next_page = _HEAD.unpack_from(page, 0)
        if magic == _MAGIC:
            while next_page != -1:
                chain.append(next_page)
                (next_page,) = _CONT.unpack_from(self.pager.read(next_page), 0)

        head_cap = PAGE_SIZE - _HEAD.size
        cont_cap = PAGE_SIZE - _CONT.size
        needed = 1
        remaining = total - head_cap
        while remaining > 0:
            needed += 1
            remaining -= cont_cap
        while len(chain) < needed:
            chain.append(self.pager.allocate())

        offset = 0
        for i, page_id in enumerate(chain[:needed]):
            nxt = chain[i + 1] if i + 1 < needed else -1
            buf = bytearray(PAGE_SIZE)
            if i == 0:
                _HEAD.pack_into(buf, 0, _MAGIC, total, nxt)
                body = head_cap
                start = _HEAD.size
            else:
                _CONT.pack_into(buf, 0, nxt)
                body = cont_cap
                start = _CONT.size
            piece = payload[offset : offset + body]
            buf[start : start + len(piece)] = piece
            offset += len(piece)
            self.pager.write(page_id, bytes(buf))

    def _read_catalog(self) -> None:
        page = self.pager.read(0)
        magic, total, next_page = _HEAD.unpack_from(page, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.pager.path} is not a MiniDB file")
        payload = bytearray(page[_HEAD.size : _HEAD.size + total])
        while len(payload) < total and next_page != -1:
            page = self.pager.read(next_page)
            (next_page,) = _CONT.unpack_from(page, 0)
            take = min(total - len(payload), PAGE_SIZE - _CONT.size)
            payload.extend(page[_CONT.size : _CONT.size + take])
        if len(payload) != total:
            raise StorageError("truncated MiniDB catalog")
        self._catalog = json.loads(bytes(payload).decode())

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #

    def create_table(self, name: str, width: int) -> Table:
        if name in self._tables:
            raise InvalidParameterError(f"table {name!r} already exists")
        info = {
            "width": int(width),
            "first_page": -1,
            "last_page": -1,
            "n_rows": 0,
            "indexes": {},
        }
        self._catalog["tables"][name] = info
        table = Table(self, name, info)
        self._tables[name] = table
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise InvalidParameterError(f"no table {name!r}")
        return self._tables[name]

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------ #
    # metadata and lifecycle
    # ------------------------------------------------------------------ #

    def set_meta(self, key: str, value) -> None:
        """Store one JSON-serializable metadata value."""
        self._catalog["meta"][key] = value

    def get_meta(self, key: str):
        return self._catalog["meta"].get(key)

    def checkpoint(self) -> None:
        """Persist the catalog and flush dirty pages."""
        self._write_catalog()
        self.pager.flush()

    def drop_cache(self) -> None:
        """Exact cold cache: flush and empty the buffer pool."""
        self.pager.drop_cache()

    def stats(self) -> PagerStats:
        """Cumulative pager counters."""
        return self.pager.stats

    def close(self) -> None:
        self.checkpoint()
        self.pager.close()

    def __enter__(self) -> "MiniDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""MiniDB catalog, tables, indexes, transactions, and fsck.

A database is one page file.  Page 0 anchors the **catalog**: a JSON
document (spanning a chain of pages) describing every table's heap chain,
row count, and indexes, plus a free-form metadata map.  ``checkpoint()``
persists the catalog and flushes dirty pages, after which the file can be
reopened cold.

Durability (docs/durability.md):

* :meth:`MiniDatabase.transaction` groups multi-page mutations (heap
  appends, B+tree splits, catalog updates) into one atomic unit — the
  catalog and every dirtied page are committed together through the
  pager's write-ahead log, and an exception rolls all of it back;
* reopening a file after a crash replays the WAL's committed prefix, so
  exactly the committed transactions are visible;
* :meth:`MiniDatabase.check` is the fsck pass: it walks catalog → heaps
  → indexes and reports every inconsistency as a structured
  :class:`~repro.errors.CorruptionError` (page checksums are verified on
  every read as a matter of course).
"""

from __future__ import annotations

import json
import struct
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ...errors import (
    CorruptionError,
    InvalidParameterError,
    StorageError,
)
from .btree import BPlusTree
from .heapfile import RID, HeapFile
from .pager import PAGE_CAPACITY, PAGE_SIZE, Pager, PagerStats

__all__ = ["MiniDatabase", "Table"]

_MAGIC = b"MINIDB01"
_HEAD = struct.Struct("<8sii")  # magic, total_len, next_page
_CONT = struct.Struct("<i")  # next_page


class Table:
    """One heap-backed table with optional B+tree indexes."""

    def __init__(self, db: "MiniDatabase", name: str, info: Dict) -> None:
        self._db = db
        self.name = name
        self._info = info
        self.heap = HeapFile(
            db.pager,
            info["width"],
            first_page=info["first_page"],
            last_page=info["last_page"],
            n_rows=info["n_rows"],
        )
        info["first_page"] = self.heap.first_page
        info["last_page"] = self.heap.last_page
        self._indexes: Dict[str, BPlusTree] = {}
        for iname, iinfo in info["indexes"].items():
            self._indexes[iname] = BPlusTree(
                db.pager, len(iinfo["key_cols"]), root=iinfo["root"]
            )

    @property
    def width(self) -> int:
        return self._info["width"]

    @property
    def n_rows(self) -> int:
        return self.heap.n_rows

    def insert(self, row: Sequence[float]) -> RID:
        """Append one row (indexes are NOT maintained; rebuild them)."""
        rid = self.heap.append(row)
        self._info["n_rows"] = self.heap.n_rows
        self._info["last_page"] = self.heap.last_page
        return rid

    def insert_many(self, rows) -> None:
        """Append many rows via the page-packed bulk path."""
        self.heap.append_many(rows)
        self._info["n_rows"] = self.heap.n_rows
        self._info["last_page"] = self.heap.last_page

    def insert_indexed(self, row: Sequence[float]) -> RID:
        """Append one row and update every index incrementally."""
        rid = self.insert(row)
        for iname, tree in self._indexes.items():
            cols = self._info["indexes"][iname]["key_cols"]
            tree.insert(tuple(row[c] for c in cols), rid)
            iinfo = self._info["indexes"][iname]
            iinfo["root"] = tree.root
            iinfo["n_entries"] = iinfo.get("n_entries", 0) + 1
        return rid

    def get(self, rid: RID) -> Tuple[float, ...]:
        return self.heap.get(rid)

    def scan(self) -> Iterator[Tuple[RID, Tuple[float, ...]]]:
        return self.heap.scan()

    # ------------------------------------------------------------------ #
    # indexes
    # ------------------------------------------------------------------ #

    def create_index(self, name: str, key_cols: Sequence[int]) -> BPlusTree:
        """(Re)build a B+tree on the given column positions."""
        cols = [int(c) for c in key_cols]
        if not cols or any(not (0 <= c < self.width) for c in cols):
            raise InvalidParameterError(
                f"key columns {cols} invalid for width {self.width}"
            )
        entries = sorted(
            ((tuple(row[c] for c in cols), rid) for rid, row in self.scan()),
            key=lambda entry: entry[0],
        )
        tree = BPlusTree(self._db.pager, len(cols))
        tree.bulk_load(entries)
        self._indexes[name] = tree
        self._info["indexes"][name] = {
            "key_cols": cols,
            "root": tree.root,
            "n_entries": len(entries),
        }
        return tree

    def has_index(self, name: str) -> bool:
        return name in self._indexes

    def index(self, name: str) -> BPlusTree:
        if name not in self._indexes:
            raise InvalidParameterError(
                f"table {self.name!r} has no index {name!r}"
            )
        return self._indexes[name]

    def index_scan_leading(
        self, name: str, first_max: float
    ) -> Iterator[Tuple[Tuple[float, ...], RID]]:
        """Index entries with leading key column <= ``first_max``.

        Yields ``(key, rid)``; fetching the full row via :meth:`get` is
        the caller's (deliberately visible) random-I/O cost.
        """
        return self.index(name).scan_leading_upto(first_max)

    def index_pages(self) -> int:
        """Total pages across this table's indexes."""
        return sum(tree.n_pages() for tree in self._indexes.values())

    def heap_pages(self) -> int:
        """Pages in the heap chain."""
        return self.heap.n_pages()


class MiniDatabase:
    """A page file with a catalog of tables (see module docstring).

    Parameters
    ----------
    path:
        Backing page file.
    cache_pages:
        Buffer-pool capacity.
    checksums / wal / fsync / opener:
        Durability knobs, passed through to :class:`Pager`.  With the
        defaults every :meth:`transaction` is atomic and crash recovery
        runs automatically on open.
    """

    def __init__(
        self,
        path: str,
        cache_pages: int = 256,
        checksums: bool = True,
        wal: bool = True,
        fsync: bool = False,
        opener: Optional[Callable] = None,
    ) -> None:
        self.pager = Pager(
            path,
            cache_pages=cache_pages,
            checksums=checksums,
            wal=wal,
            fsync=fsync,
            opener=opener,
        )
        self._tables: Dict[str, Table] = {}
        self._catalog: Dict = {"tables": {}, "meta": {}}
        self._txn_depth = 0
        self._closed = False
        if self.pager.n_pages == 0:
            root = self.pager.allocate()
            assert root == 0
            self._write_catalog()
            self.pager.commit()  # an empty database is a committed state
        else:
            self._read_catalog()
            self._load_tables()

    def _load_tables(self) -> None:
        self._tables = {}
        for name, info in self._catalog["tables"].items():
            self._tables[name] = Table(self, name, info)

    # ------------------------------------------------------------------ #
    # catalog persistence
    # ------------------------------------------------------------------ #

    def _write_catalog(self) -> None:
        payload = json.dumps(self._catalog).encode()
        total = len(payload)
        # reuse the existing chain where possible
        chain: List[int] = [0]
        page = self.pager.read(0)
        magic, _len, next_page = _HEAD.unpack_from(page, 0)
        if magic == _MAGIC:
            while next_page != -1:
                chain.append(next_page)
                (next_page,) = _CONT.unpack_from(self.pager.read(next_page), 0)

        head_cap = PAGE_CAPACITY - _HEAD.size
        cont_cap = PAGE_CAPACITY - _CONT.size
        needed = 1
        remaining = total - head_cap
        while remaining > 0:
            needed += 1
            remaining -= cont_cap
        while len(chain) < needed:
            chain.append(self.pager.allocate())

        offset = 0
        for i, page_id in enumerate(chain[:needed]):
            nxt = chain[i + 1] if i + 1 < needed else -1
            buf = bytearray(PAGE_SIZE)
            if i == 0:
                _HEAD.pack_into(buf, 0, _MAGIC, total, nxt)
                body = head_cap
                start = _HEAD.size
            else:
                _CONT.pack_into(buf, 0, nxt)
                body = cont_cap
                start = _CONT.size
            piece = payload[offset : offset + body]
            buf[start : start + len(piece)] = piece
            offset += len(piece)
            self.pager.write(page_id, bytes(buf))

    def _read_catalog(self) -> None:
        page = self.pager.read(0)
        magic, total, next_page = _HEAD.unpack_from(page, 0)
        if magic != _MAGIC:
            raise StorageError(f"{self.pager.path} is not a MiniDB file")
        head_take = min(total, PAGE_CAPACITY - _HEAD.size)
        payload = bytearray(page[_HEAD.size : _HEAD.size + head_take])
        while len(payload) < total and next_page != -1:
            page = self.pager.read(next_page)
            (next_page,) = _CONT.unpack_from(page, 0)
            take = min(total - len(payload), PAGE_CAPACITY - _CONT.size)
            payload.extend(page[_CONT.size : _CONT.size + take])
        if len(payload) != total:
            raise CorruptionError(
                f"{self.pager.path}: truncated MiniDB catalog"
            )
        try:
            self._catalog = json.loads(bytes(payload).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptionError(
                f"{self.pager.path}: catalog is not valid JSON: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # transactions
    # ------------------------------------------------------------------ #

    @contextmanager
    def transaction(self) -> Iterator["MiniDatabase"]:
        """Atomic scope: commit on success, roll back on exception.

        Nested uses join the outermost transaction (commit/rollback
        happen only when the outermost scope exits).
        """
        self._check_open()
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                try:
                    self.commit()
                except BaseException:
                    # a failed commit must not leave half-applied state
                    # visible in memory; the WAL tail is uncommitted so
                    # rollback restores the last durable snapshot
                    self.rollback()
                    raise

    def commit(self) -> None:
        """Persist the catalog and atomically commit all dirty pages."""
        self._check_open()
        self._write_catalog()
        self.pager.commit()

    def rollback(self) -> None:
        """Discard uncommitted changes; reload catalog and tables."""
        self._check_open()
        self.pager.rollback()
        self._read_catalog()
        self._load_tables()

    # ------------------------------------------------------------------ #
    # tables
    # ------------------------------------------------------------------ #

    def create_table(self, name: str, width: int) -> Table:
        if name in self._tables:
            raise InvalidParameterError(f"table {name!r} already exists")
        info = {
            "width": int(width),
            "first_page": -1,
            "last_page": -1,
            "n_rows": 0,
            "indexes": {},
        }
        self._catalog["tables"][name] = info
        table = Table(self, name, info)
        self._tables[name] = table
        return table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table(self, name: str) -> Table:
        if name not in self._tables:
            raise InvalidParameterError(f"no table {name!r}")
        return self._tables[name]

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------ #
    # metadata and lifecycle
    # ------------------------------------------------------------------ #

    def set_meta(self, key: str, value) -> None:
        """Store one JSON-serializable metadata value."""
        self._catalog["meta"][key] = value

    def get_meta(self, key: str):
        return self._catalog["meta"].get(key)

    def checkpoint(self) -> None:
        """Persist the catalog and flush dirty pages (WAL transferred)."""
        self._check_open()
        self._write_catalog()
        self.pager.flush()

    def drop_cache(self) -> None:
        """Exact cold cache: flush and empty the buffer pool."""
        self.pager.drop_cache()

    def stats(self) -> PagerStats:
        """Cumulative pager counters."""
        return self.pager.stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._write_catalog()
        finally:
            self.pager.close()

    def __enter__(self) -> "MiniDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("database is closed")

    # ------------------------------------------------------------------ #
    # fsck
    # ------------------------------------------------------------------ #

    def check(self) -> List[CorruptionError]:
        """Walk catalog → heaps → indexes; return every inconsistency.

        Page checksums are verified for *every* allocated page, then each
        table's heap chain and B+trees are validated structurally:
        in-range page ids, no chain cycles, header row counts within
        capacity, catalog row counts matching the chains, sorted index
        keys, rids that resolve to live rows, and index entry counts
        matching the catalog.  An empty list means the file is clean.
        """
        self._check_open()
        problems: List[CorruptionError] = []

        # verify disk state, not pool copies — but never as a side effect
        # of fsck commit someone's in-flight changes
        if not self.pager.has_uncommitted:
            self.pager.drop_cache()

        # 1. every allocated page must pass its checksum
        for page_id in range(self.pager.n_pages):
            try:
                self.pager.read(page_id)
            except CorruptionError as exc:
                problems.append(exc)

        # 2. the catalog must parse (it did at open; re-verify structure)
        try:
            self._read_catalog()
        except CorruptionError as exc:
            problems.append(exc)
            return problems  # nothing else is walkable
        except StorageError as exc:
            problems.append(CorruptionError(str(exc)))
            return problems
        # keep live Table objects wired to the freshly parsed catalog
        self._load_tables()

        claimed: Dict[int, str] = {0: "catalog"}
        page = self.pager.read(0)
        _magic, _total, next_page = _HEAD.unpack_from(page, 0)
        while next_page != -1:
            claimed[next_page] = "catalog"
            (next_page,) = _CONT.unpack_from(self.pager.read(next_page), 0)

        for name in self.table_names:
            table = self.table(name)
            heap_counts = self._check_heap(table, claimed, problems)
            for iname in sorted(table._indexes):
                self._check_index(table, iname, heap_counts, claimed, problems)
        return problems

    def _claim(
        self,
        page_id: int,
        owner: str,
        claimed: Dict[int, str],
        problems: List[CorruptionError],
    ) -> bool:
        """Record page ownership; report double-claims and range errors."""
        if not (0 <= page_id < self.pager.n_pages):
            problems.append(
                CorruptionError(
                    f"{owner}: page id {page_id} out of range "
                    f"[0, {self.pager.n_pages})"
                )
            )
            return False
        if page_id in claimed:
            problems.append(
                CorruptionError(
                    f"{owner}: page {page_id} already belongs to "
                    f"{claimed[page_id]}"
                )
            )
            return False
        claimed[page_id] = owner
        return True

    def _check_heap(
        self,
        table: Table,
        claimed: Dict[int, str],
        problems: List[CorruptionError],
    ) -> Dict[int, int]:
        """Walk one heap chain; returns {page_id: row count} for rid checks."""
        owner = f"table {table.name!r} heap"
        heap = table.heap
        counts: Dict[int, int] = {}
        total = 0
        page_id = heap.first_page
        last_seen = page_id
        while page_id != -1:
            if not self._claim(page_id, owner, claimed, problems):
                break  # cycle or bad link: stop walking
            try:
                count, next_page = heap._read_header(self.pager.read(page_id))
            except CorruptionError:
                break  # already reported by the checksum sweep
            if not (0 <= count <= heap.rows_per_page):
                problems.append(
                    CorruptionError(
                        f"{owner}: page {page_id} claims {count} rows "
                        f"(capacity {heap.rows_per_page})"
                    )
                )
                break
            counts[page_id] = count
            total += count
            last_seen = page_id
            page_id = next_page
        if total != table._info["n_rows"]:
            problems.append(
                CorruptionError(
                    f"{owner}: chain holds {total} rows but the catalog "
                    f"records {table._info['n_rows']}"
                )
            )
        if last_seen != heap.last_page:
            problems.append(
                CorruptionError(
                    f"{owner}: chain ends at page {last_seen} but the "
                    f"catalog records last_page={heap.last_page}"
                )
            )
        return counts

    def _check_index(
        self,
        table: Table,
        iname: str,
        heap_counts: Dict[int, int],
        claimed: Dict[int, str],
        problems: List[CorruptionError],
    ) -> None:
        owner = f"table {table.name!r} index {iname!r}"
        tree = table._indexes[iname]
        iinfo = table._info["indexes"][iname]
        if tree.root < 0:
            problems.append(CorruptionError(f"{owner}: no root page"))
            return
        # BFS over internal nodes, collecting leaves
        frontier = [tree.root]
        leaves: Set[int] = set()
        while frontier:
            page_id = frontier.pop()
            if not self._claim(page_id, owner, claimed, problems):
                return
            try:
                node = tree._decode(page_id)
            except (CorruptionError, struct.error):
                problems.append(
                    CorruptionError(f"{owner}: page {page_id} is undecodable")
                )
                return
            if node[0] == "leaf":
                leaves.add(page_id)
            elif node[0] == "internal":
                frontier.extend(node[2])
            else:
                problems.append(
                    CorruptionError(
                        f"{owner}: page {page_id} has unknown node kind"
                    )
                )
                return
        # walk the leaf chain explicitly (cycle-safe: every visited page
        # must be a leaf the BFS discovered, and none may repeat), checking
        # sorted keys and resolvable rids
        entries = 0
        prev_key = None
        visited: Set[int] = set()
        try:
            page_id = tree._leftmost_leaf()
            while page_id != -1:
                if page_id not in leaves or page_id in visited:
                    problems.append(
                        CorruptionError(
                            f"{owner}: leaf chain escapes the tree at page "
                            f"{page_id}"
                        )
                    )
                    return
                visited.add(page_id)
                _kind, leaf_entries, page_id = tree._decode(page_id)
                for key, rid in leaf_entries:
                    entries += 1
                    if prev_key is not None and key < prev_key:
                        problems.append(
                            CorruptionError(
                                f"{owner}: keys out of order at entry "
                                f"{entries}"
                            )
                        )
                    prev_key = key
                    if rid.page_id not in heap_counts:
                        problems.append(
                            CorruptionError(
                                f"{owner}: entry {entries} points at page "
                                f"{rid.page_id}, not in the table's heap "
                                "chain"
                            )
                        )
                    elif not (0 <= rid.slot < heap_counts[rid.page_id]):
                        problems.append(
                            CorruptionError(
                                f"{owner}: entry {entries} slot {rid.slot} "
                                f"exceeds page {rid.page_id}'s "
                                f"{heap_counts[rid.page_id]} rows"
                            )
                        )
        except (CorruptionError, StorageError, struct.error) as exc:
            problems.append(
                CorruptionError(f"{owner}: leaf chain walk failed: {exc}")
            )
            return
        expected = iinfo.get("n_entries")
        if expected is not None and entries != expected:
            problems.append(
                CorruptionError(
                    f"{owner}: {entries} entries but the catalog records "
                    f"{expected}"
                )
            )

"""Observation write-ahead log for the live index's hot partition.

PR 7's streaming tier keeps the hot partition purely in memory: a crash
loses everything after the last seal, and recovery depends on the
*producer* replaying its stream from the durable watermark — acceptable
when the source is a file, fatal when it is a one-shot sensor stream.
The :class:`LiveWAL` closes that gap at the cheapest possible layer: it
logs **raw observations** ``(t, v)`` — not feature rows — before they
enter the segmenter.  Because the whole pipeline downstream of the
observations is deterministic (global segmenter, global extractor,
bit-for-bit batch ≡ live), replaying the logged suffix through the
ordinary ingest path on reopen reproduces the lost hot partition
exactly, and resume needs **no source replay**.

File layout (little-endian), modeled on ``storage/minidb/wal.py``::

    header:  8s magic "SDLWAL01"
    frame:   u8 kind | u32 count | u32 crc32(payload) | payload
      kind=1 OBS:  count = n observations, payload = n x 16 bytes of
                   interleaved (t, v) float64 pairs
      kind=2 GAP:  count = 0, payload = 8 bytes float64 — the time of
                   the last observation before ``mark_gap`` (NaN when
                   the gap preceded any observation)

Every frame is written with a **single** unbuffered ``write`` call, so a
torn frame is always a prefix of one record; recovery scans from the
header and truncates at the first short read, CRC mismatch, or unknown
kind — exactly the un-fsynced tail, never committed data.

Durability contract: ``fsync`` is batched (every ``sync_obs``
observations, on gap frames, on close, and before a rotation), so a
power cut loses at most the observations appended since the last sync.
At each seal the log is **rotated atomically** (rewrite the frames past
the new watermark into a temp file, fsync, ``os.replace``) — rotation
is pure garbage collection: stale frames are skipped on replay by the
resume watermark, so a crash at any point of the rotation is safe.

All file I/O goes through a filesystem facade
(:class:`~repro.storage.faults.RealFS`), so the disk-fault injection
harness can crash, tear, or ENOSPC any counted operation.
"""

from __future__ import annotations

import logging
import math
import os
import struct
import zlib
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import StorageError
from ..obs.metrics import REGISTRY
from .faults import FaultInjected, RealFS

__all__ = ["LiveWAL", "WAL_NAME"]

logger = logging.getLogger("repro.storage")

#: The hot-partition WAL's file name inside a partition directory.
WAL_NAME = "hot.wal"

_MAGIC = b"SDLWAL01"
_HEADER = struct.Struct("<8s")
_RECORD = struct.Struct("<BII")  # kind, count, crc32(payload)
_OBS = 1
_GAP = 2
_OBS_BYTES = 16  # one float64 (t, v) pair
_GAP_PAYLOAD = struct.Struct("<d")

_WAL_FRAMES = REGISTRY.counter(
    "repro_live_wal_frames_total",
    "Observation/gap frames appended to hot-partition WALs",
    always_on=True,
)
_WAL_OBSERVATIONS = REGISTRY.counter(
    "repro_live_wal_observations_total",
    "Observations made durable through hot-partition WALs",
    always_on=True,
)
_WAL_SYNCS = REGISTRY.counter(
    "repro_live_wal_syncs_total",
    "fsync barriers issued by hot-partition WALs",
    always_on=True,
)
_WAL_REPLAYED = REGISTRY.counter(
    "repro_live_wal_replayed_observations_total",
    "Observations replayed from hot-partition WALs on open",
    always_on=True,
)
_WAL_REWRITES = REGISTRY.counter(
    "repro_live_wal_rewrites_total",
    "Atomic WAL rotations performed at partition seals",
    always_on=True,
)
_WAL_TORN_BYTES = REGISTRY.counter(
    "repro_live_wal_torn_bytes_total",
    "Bytes of torn/garbage WAL tail discarded during recovery",
    always_on=True,
)

#: One recovered frame: ``("obs", ts, vs)`` or ``("gap", t)``.
Frame = Union[
    Tuple[str, np.ndarray, np.ndarray],
    Tuple[str, float],
]


def _fsync_fh(fh) -> None:
    sync = getattr(fh, "fsync", None)
    if sync is not None:
        sync()
    else:
        os.fsync(fh.fileno())


class LiveWAL:
    """Framed, checksummed, replay-on-open observation log.

    Parameters
    ----------
    path:
        Log file; created (with a fresh header) if missing, recovered
        (torn tail truncated) if present.
    sync_obs:
        fsync once at least this many observations accumulated since the
        last barrier (plus on gaps, close, and rotation).
    fs:
        Filesystem facade (:class:`~repro.storage.faults.RealFS` by
        default) so the fault harness can interpose on every file op.
    """

    def __init__(
        self,
        path: str,
        sync_obs: int = 4096,
        fs: Optional[RealFS] = None,
    ) -> None:
        if sync_obs < 1:
            raise StorageError("sync_obs must be >= 1")
        self.path = path
        self.sync_obs = int(sync_obs)
        self._fs = fs or RealFS()
        self._unsynced_obs = 0
        self.n_frames = 0
        self.n_observations = 0
        #: Torn/garbage tail bytes discarded by the last recovery.
        self.discarded_bytes = 0
        self._recovered: List[Frame] = []
        fresh = not os.path.exists(path)
        if fresh:
            self._fs.open(path, "xb").close()
        self._file = self._fs.open(path, "r+b")
        if fresh:
            self._file.write(_HEADER.pack(_MAGIC))
            self._end = _HEADER.size
        else:
            self._recover()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #

    @staticmethod
    def _scan_frames(fh) -> Tuple[List[Frame], int, int, bool]:
        """Parse ``fh`` from the start.

        Returns ``(frames, good_end, file_size, header_ok)`` where
        ``good_end`` is the offset just past the last intact frame.
        ``header_ok`` is False for a short/absent header (reinitialize)
        — a *wrong* header raises :class:`StorageError` instead.
        """
        fh.seek(0, os.SEEK_END)
        file_size = fh.tell()
        fh.seek(0)
        header = fh.read(_HEADER.size)
        if len(header) < _HEADER.size:
            return [], 0, file_size, False
        (magic,) = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise StorageError("not a live-index WAL file")
        pos = _HEADER.size
        frames: List[Frame] = []
        while True:
            rec = fh.read(_RECORD.size)
            if len(rec) < _RECORD.size:
                break
            kind, count, crc = _RECORD.unpack(rec)
            if kind == _OBS:
                need = count * _OBS_BYTES
            elif kind == _GAP:
                need = _GAP_PAYLOAD.size
            else:
                break  # garbage
            payload = fh.read(need)
            if len(payload) < need or zlib.crc32(payload) != crc:
                break  # torn frame
            if kind == _OBS:
                arr = np.frombuffer(payload, dtype="<f8").reshape(count, 2)
                frames.append(
                    ("obs",
                     np.ascontiguousarray(arr[:, 0]),
                     np.ascontiguousarray(arr[:, 1]))
                )
            else:
                frames.append(("gap", _GAP_PAYLOAD.unpack(payload)[0]))
            pos += _RECORD.size + need
        return frames, pos, file_size, True

    def _recover(self) -> None:
        try:
            frames, good_end, file_size, header_ok = self._scan_frames(
                self._file
            )
        except StorageError as exc:
            raise StorageError(f"{self.path}: {exc}") from exc
        if not header_ok:
            logger.warning(
                "live WAL recovery: %s has a torn header (%d bytes), "
                "reinitializing", self.path, file_size,
            )
            self._file.seek(0)
            self._file.truncate(0)
            self._file.write(_HEADER.pack(_MAGIC))
            self._end = _HEADER.size
            self.discarded_bytes = file_size
            if file_size:
                _WAL_TORN_BYTES.inc(file_size)
            return
        discarded = file_size - good_end
        if discarded > 0:
            logger.warning(
                "live WAL recovery: %s discarding %d byte(s) of torn "
                "tail after offset %d", self.path, discarded, good_end,
            )
            self._file.truncate(good_end)
            _WAL_TORN_BYTES.inc(discarded)
        self.discarded_bytes = discarded
        self._recovered = frames
        self._end = good_end
        self.n_frames = len(frames)
        self.n_observations = sum(
            f[1].shape[0] for f in frames if f[0] == "obs"
        )

    def replay_frames(self) -> List[Frame]:
        """The intact frames recovered at open, oldest first."""
        return list(self._recovered)

    # ------------------------------------------------------------------ #
    # logging
    # ------------------------------------------------------------------ #

    def append(self, ts: np.ndarray, vs: np.ndarray) -> None:
        """Log one OBS frame (a single write; fsync per the batching
        policy).  Must be called *before* the observations reach the
        segmenter — that is what makes it a write-*ahead* log."""
        ts = np.ascontiguousarray(ts, dtype=float)
        vs = np.ascontiguousarray(vs, dtype=float)
        n = int(ts.shape[0])
        if n == 0:
            return
        payload_arr = np.empty((n, 2), dtype="<f8")
        payload_arr[:, 0] = ts
        payload_arr[:, 1] = vs
        payload = payload_arr.tobytes()
        self._file.seek(self._end)
        self._file.write(
            _RECORD.pack(_OBS, n, zlib.crc32(payload)) + payload
        )
        self._end += _RECORD.size + len(payload)
        self.n_frames += 1
        self.n_observations += n
        self._unsynced_obs += n
        _WAL_FRAMES.inc()
        _WAL_OBSERVATIONS.inc(n)
        if self._unsynced_obs >= self.sync_obs:
            self.sync()

    def log_gap(self, t: Optional[float]) -> None:
        """Log a GAP frame (episode break) and sync immediately —
        gaps are rare and an episode boundary is worth a barrier."""
        payload = _GAP_PAYLOAD.pack(
            float(t) if t is not None else math.nan
        )
        self._file.seek(self._end)
        self._file.write(
            _RECORD.pack(_GAP, 0, zlib.crc32(payload)) + payload
        )
        self._end += _RECORD.size + len(payload)
        self.n_frames += 1
        self._unsynced_obs += 1
        _WAL_FRAMES.inc()
        self.sync()

    def sync(self) -> None:
        """Issue an fsync barrier if anything is un-synced."""
        if self._unsynced_obs == 0:
            return
        _fsync_fh(self._file)
        self._unsynced_obs = 0
        _WAL_SYNCS.inc()

    # ------------------------------------------------------------------ #
    # rotation / lifecycle
    # ------------------------------------------------------------------ #

    def rewrite(self, watermark: float) -> None:
        """Atomically drop every frame covered by ``watermark``.

        Called after a seal installs its manifest: observations at or
        before the watermark are durable in sealed partitions, so their
        frames are garbage.  Frames straddling the watermark are
        rewritten with only their uncovered suffix.  The rotation is
        temp-file + fsync + ``os.replace``; a crash at any point leaves
        either the old or the new log, and replay of stale frames is
        idempotent (the resume watermark skips them) — so rotation is
        never on the correctness path, only the space path.
        """
        frames, good_end, _, header_ok = self._scan_frames(self._file)
        if not header_ok:  # pragma: no cover - header written at create
            raise StorageError(f"{self.path}: torn header during rewrite")
        tmp = self.path + ".tmp"
        kept_frames = 0
        kept_obs = 0
        try:
            out = self._fs.open(tmp, "wb")
            try:
                out.write(_HEADER.pack(_MAGIC))
                for frame in frames:
                    if frame[0] == "obs":
                        ts, vs = frame[1], frame[2]
                        start = int(
                            np.searchsorted(ts, watermark, side="right")
                        )
                        if start >= ts.shape[0]:
                            continue
                        ts, vs = ts[start:], vs[start:]
                        arr = np.empty((ts.shape[0], 2), dtype="<f8")
                        arr[:, 0] = ts
                        arr[:, 1] = vs
                        payload = arr.tobytes()
                        out.write(
                            _RECORD.pack(
                                _OBS, ts.shape[0], zlib.crc32(payload)
                            ) + payload
                        )
                        kept_obs += int(ts.shape[0])
                    else:
                        # keep gaps at or past the watermark: a gap
                        # logged exactly at the seal point still resets
                        # pairing history on replay.  NaN (a gap before
                        # any observation) compares False and is
                        # dropped — sealed observations postdate it.
                        t = frame[1]
                        if not t >= watermark:
                            continue
                        payload = _GAP_PAYLOAD.pack(t)
                        out.write(
                            _RECORD.pack(_GAP, 0, zlib.crc32(payload))
                            + payload
                        )
                    kept_frames += 1
                _fsync_fh(out)
            finally:
                out.close()
            self._file.close()
            try:
                self._fs.replace(tmp, self.path)
            except FaultInjected:
                raise
            except OSError:
                # rotation failed post-write: reopen the intact old log
                # and keep running — GC can retry at the next seal
                self._file = self._fs.open(self.path, "r+b")
                self._end = good_end
                raise
        except BaseException as exc:
            if not isinstance(exc, FaultInjected):
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            raise
        self._file = self._fs.open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self._end = self._file.tell()
        self.n_frames = kept_frames
        self.n_observations = kept_obs
        self._unsynced_obs = 0
        _WAL_REWRITES.inc()

    def reset(self) -> None:
        """Empty the log (its observations are durable elsewhere)."""
        self._file.truncate(_HEADER.size)
        self._end = _HEADER.size
        self.n_frames = 0
        self.n_observations = 0
        self._unsynced_obs = 0
        self._recovered = []

    def mark_replayed(self, n_observations: int) -> None:
        """Account ``n_observations`` as replayed (metrics hook)."""
        if n_observations:
            _WAL_REPLAYED.inc(n_observations)

    @property
    def size_bytes(self) -> int:
        return self._end

    def stats(self) -> dict:
        return {
            "path": self.path,
            "frames": self.n_frames,
            "observations": self.n_observations,
            "bytes": self._end,
            "sync_obs": self.sync_obs,
        }

    def close(self, delete: bool = False) -> None:
        """Sync (best effort) and close; ``delete=True`` on finalize."""
        try:
            try:
                self.sync()
            except Exception:
                pass  # teardown after a (simulated) crash stays silent
            self._file.close()
        finally:
            if delete and os.path.exists(self.path):
                os.unlink(self.path)

    # ------------------------------------------------------------------ #
    # read-only inspection (fsck)
    # ------------------------------------------------------------------ #

    @classmethod
    def scan(cls, path: str) -> dict:
        """Parse ``path`` without mutating it (the ``segdiff fsck``
        probe).  Raises :class:`StorageError` on a wrong magic."""
        with open(path, "rb") as fh:
            frames, good_end, file_size, header_ok = cls._scan_frames(fh)
        if not header_ok:
            return {
                "frames": 0, "observations": 0, "gaps": 0,
                "torn_bytes": file_size, "header_ok": False,
            }
        return {
            "frames": len(frames),
            "observations": sum(
                f[1].shape[0] for f in frames if f[0] == "obs"
            ),
            "gaps": sum(1 for f in frames if f[0] == "gap"),
            "torn_bytes": file_size - good_end,
            "header_ok": True,
        }

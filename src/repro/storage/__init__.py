"""Feature storage substrate.

SegDiff stores its ε-shifted corner features "in a relational database"
and answers searches with standard range queries.  Two interchangeable
backends implement :class:`FeatureStore`:

* :class:`SqliteFeatureStore` — the paper-faithful backend: B-tree
  indexed tables in SQLite, with forced sequential-scan or forced-index
  query plans and warm/cold cache modes (the paper used MySQL; see
  DESIGN.md §2).
* :class:`MemoryFeatureStore` — numpy arrays in RAM with an optional
  sort-based index analogue; used for fast tests and the backend ablation.
"""

from .base import FeatureStore, StoreCounts
from .checksum import (
    ChecksumTree,
    build_tree,
    diff_trees,
    load_trees,
    persist_trees,
    store_trees,
)
from .grid_index import GridIndex
from .memory_store import MemoryFeatureStore
from .minidb import MiniDbFeatureStore
from .partitions import Partition, PartitionManifest, PartitionSpec
from .sqlite_store import SqliteFeatureStore
from .schema import (
    SEGDIFF_TABLES,
    space_saving_ratio,
    COLUMNS_EXH,
    columns_for_corner_count,
)

__all__ = [
    "ChecksumTree",
    "FeatureStore",
    "StoreCounts",
    "GridIndex",
    "MemoryFeatureStore",
    "MiniDbFeatureStore",
    "Partition",
    "PartitionManifest",
    "PartitionSpec",
    "SqliteFeatureStore",
    "SEGDIFF_TABLES",
    "build_tree",
    "diff_trees",
    "load_trees",
    "persist_trees",
    "space_saving_ratio",
    "store_trees",
    "COLUMNS_EXH",
    "columns_for_corner_count",
]

"""SQLite-backed feature store — the paper-faithful backend.

The paper stored features in MySQL 5.0 with B-tree indexes and measured
both sequential-scan and index plans, with and without caches.  This store
reproduces all four regimes on SQLite:

* ``mode="scan"`` forces a table scan with ``NOT INDEXED``;
* ``mode="index"`` forces the Section 4.4 B-trees with ``INDEXED BY``;
* ``cache="warm"`` reuses the long-lived connection (page cache primed);
* ``cache="cold"`` opens a fresh connection with a minimal page cache for
  the single query, emulating the paper's flushed-cache runs (the OS page
  cache cannot be flushed portably — DESIGN.md §5.7).

Sizes are measured with the ``dbstat`` virtual table (pages actually used
per table/index) when available, falling back to a row-size model.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import threading
import time
from typing import Callable, Dict, List, Optional, TypeVar

from ..core.corners import FeatureSet
from ..core.queries import line_candidate_sql, point_candidate_sql
from ..engine.resilience import RetryPolicy
from ..errors import InvalidParameterError, StorageError
from ..obs import context as obs_context
from ..obs.metrics import REGISTRY, ROWS_BUCKETS
from ..types import SegmentPair
from .base import FeatureStore, Query, StoreCounts
from .schema import (
    CREATE_INDEX_SQL,
    CREATE_TABLE_SQL,
    INDEX_NAMES,
    LINE_TABLES,
    META_DDL,
    POINT_TABLES,
    SEGDIFF_TABLES,
    SEGMENTS_DDL,
)

__all__ = ["SqliteFeatureStore"]

_BATCH = 5_000
_T = TypeVar("_T")

_ROWS_WRITTEN = REGISTRY.counter(
    "repro_store_rows_written_total",
    "Feature rows written to a store", {"backend": "sqlite"},
)
_FLUSH_ROWS = REGISTRY.histogram(
    "repro_store_flush_rows",
    "Rows per bulk write reaching a store", {"backend": "sqlite"},
    buckets=ROWS_BUCKETS,
)
_OPEN_STORES = REGISTRY.gauge(
    "repro_store_open", "Feature stores currently open",
    {"backend": "sqlite"},
)
_RETRIES = REGISTRY.counter(
    "repro_sqlite_retries_total",
    "Transient SQLite lock errors that were retried",
)


def _is_transient(exc: BaseException) -> bool:
    """Lock contention errors that a retry can cure."""
    msg = str(exc).lower()
    return "locked" in msg or "busy" in msg


def _sleep(seconds: float) -> None:
    # resolved through this module's ``time`` so tests can monkeypatch
    # ``sqlite_store.time.sleep`` and observe the backoff schedule
    time.sleep(seconds)


class SqliteFeatureStore(FeatureStore):
    """Feature store over a SQLite file (see module docstring).

    ``path=None`` creates a private temporary database file removed on
    :meth:`close`.  ``busy_timeout`` (seconds) makes SQLite itself wait
    on locked databases; on top of it, transient
    ``sqlite3.OperationalError`` s ("database is locked"/"busy") are
    retried up to ``max_retries`` times with exponential backoff before
    surfacing as :class:`StorageError` — a writer no longer falls over
    because a dashboard reader held the file for a moment.
    """

    BACKEND = "sqlite"
    # reads off the owner thread already get lazy per-thread connections,
    # so the session layer imposes no lock on this backend
    THREAD_SAFE_READS = True

    def __init__(
        self,
        path: Optional[str] = None,
        busy_timeout: float = 5.0,
        max_retries: int = 5,
        flush_rows: int = _BATCH,
    ) -> None:
        if flush_rows < 1:
            raise InvalidParameterError(
                f"flush_rows must be >= 1, got {flush_rows}"
            )
        self.flush_rows = int(flush_rows)
        self.busy_timeout = float(busy_timeout)
        self.max_retries = int(max_retries)
        if path is None:
            fd, path = tempfile.mkstemp(prefix="segdiff-", suffix=".sqlite")
            os.close(fd)
            os.unlink(path)  # let sqlite create it fresh
            self._owns_file = True
        else:
            self._owns_file = False
        self.path = path
        self._owner_thread = threading.get_ident()
        self._conn = self._connect()
        self._buffers: Dict[str, List[tuple]] = {t: [] for t in SEGDIFF_TABLES}
        self._segment_buffer: List[tuple] = []
        self._indexed = False
        self._closed = False
        # SQLite connections are bound to their creating thread; reads
        # from other threads (e.g. a dashboard serving many users) get
        # lazy per-thread connections.  Writes stay owner-thread-only.
        self._read_conns = threading.local()
        self._spawned_conns: List[sqlite3.Connection] = []
        self._spawn_lock = threading.Lock()
        self._retry: Optional[RetryPolicy] = None
        self._create_tables()
        _OPEN_STORES.inc()

    def _connect(self, cross_thread: bool = False) -> sqlite3.Connection:
        # cross_thread connections are used by exactly one reader thread
        # (via thread-local storage) but must be closable by the owner
        conn = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout,
            check_same_thread=not cross_thread,
        )
        try:
            # the default rollback journal (DELETE) is required for
            # crash safety: with journaling OFF a process killed
            # mid-commit leaves a malformed database that no resume can
            # salvage.  synchronous=OFF only skips fsync barriers —
            # safe against process death, not power loss — and keeps
            # the build benchmarks honest.
            conn.execute("PRAGMA journal_mode = DELETE")
            conn.execute("PRAGMA synchronous = OFF")
            conn.execute(
                f"PRAGMA busy_timeout = {int(self.busy_timeout * 1000)}"
            )
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise StorageError(
                f"{self.path} is not a SQLite database: {exc}"
            ) from exc
        return conn

    def _create_tables(self) -> None:
        try:
            existing = {
                row[0]
                for row in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StorageError(
                f"{self.path} is not a SQLite database: {exc}"
            ) from exc
        for table, ddl in CREATE_TABLE_SQL.items():
            if table not in existing:
                self._conn.execute(ddl)
        self._conn.execute(SEGMENTS_DDL)
        self._conn.execute(META_DDL)
        self._indexed = self._indexes_present()
        self._conn.commit()

    def _indexes_present(self) -> bool:
        names = {
            row[0]
            for row in self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='index'"
            )
        }
        return all(idx in names for idx in INDEX_NAMES.values())

    def _retry_policy(self) -> RetryPolicy:
        """The shared :class:`RetryPolicy` sized to ``max_retries``.

        Cached; rebuilt only if ``max_retries`` is changed after
        construction (some tests do).
        """
        attempts = max(1, self.max_retries)
        policy = self._retry
        if policy is None or policy.max_attempts != attempts:
            policy = RetryPolicy(
                max_attempts=attempts,
                base_delay=0.02,
                multiplier=2.0,
                name="sqlite",
                sleep=_sleep,
            )
            self._retry = policy
        return policy

    def _with_retry(self, fn: Callable[[], _T]) -> _T:
        """Run ``fn``, retrying transient lock errors with backoff."""
        return self._retry_policy().run(
            fn,
            catch=(sqlite3.OperationalError,),
            transient=_is_transient,
            wrap=lambda exc, attempts: StorageError(
                f"{self.path}: {exc} (after {attempts} attempt(s))"
            ),
            on_retry=lambda exc: _RETRIES.inc(),
        )

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def add(self, features: FeatureSet) -> None:
        self._check_open()
        ident = features.pair.as_tuple()
        buf = self._buffers
        for p in features.drop_points:
            buf["drop_points"].append((p.dt, p.dv) + ident)
        for seg in features.drop_lines:
            buf["drop_lines"].append(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        for p in features.jump_points:
            buf["jump_points"].append((p.dt, p.dv) + ident)
        for seg in features.jump_lines:
            buf["jump_lines"].append(
                (seg.p.dt, seg.p.dv, seg.q.dt, seg.q.dv) + ident
            )
        if any(len(rows) >= self.flush_rows for rows in buf.values()):
            self._flush()

    def add_features_bulk(self, batch) -> None:
        """Queue a whole :class:`FeatureBatch`'s rows for ``executemany``."""
        self._check_open()
        buf = self._buffers
        if batch.drop_points.shape[0]:
            buf["drop_points"].extend(batch.drop_points.tolist())
        if batch.drop_lines.shape[0]:
            buf["drop_lines"].extend(batch.drop_lines.tolist())
        if batch.jump_points.shape[0]:
            buf["jump_points"].extend(batch.jump_points.tolist())
        if batch.jump_lines.shape[0]:
            buf["jump_lines"].extend(batch.jump_lines.tolist())
        if any(len(rows) >= self.flush_rows for rows in buf.values()):
            self._flush()

    def _flush(self) -> None:
        self._flush_segments()
        flushed = 0
        for table, rows in self._buffers.items():
            if not rows:
                continue
            width = 6 if table in POINT_TABLES.values() else 8
            placeholders = ",".join("?" * width)
            self._with_retry(
                lambda: self._conn.executemany(
                    f"INSERT INTO {table} VALUES ({placeholders})", rows
                )
            )
            flushed += len(rows)
            rows.clear()
        if flushed:
            _ROWS_WRITTEN.inc(flushed)
            _FLUSH_ROWS.observe(flushed)
        # no commit here: a buffer flush mid-stream must never create a
        # durable cut, or a crash could persist a segment without the
        # rest of its feature pairs (resume() would not regenerate them);
        # only finalize()/checkpoint boundaries commit

    def _flush_segments(self) -> None:
        if not self._segment_buffer:
            return
        self._with_retry(
            lambda: self._conn.executemany(
                "INSERT INTO segments (t_start, v_start, t_end, v_end) "
                "VALUES (?, ?, ?, ?)",
                self._segment_buffer,
            )
        )
        self._segment_buffer.clear()

    def finalize(self) -> None:
        """Flush pending rows and (re)build the Section 4.4 B-trees."""
        self._check_open()
        self._flush()
        if not self._indexed:

            def build() -> None:
                for ddl in CREATE_INDEX_SQL.values():
                    self._conn.execute(ddl)
                self._conn.execute("ANALYZE")

            self._with_retry(build)
            self._indexed = True
        self._with_retry(self._conn.commit)

    def add_segment(self, segment) -> None:
        """Buffer one segment row; flushed with the feature buffers.

        Buffered rows ride the same bulk ``executemany`` path as feature
        rows and reach durability at exactly the same commit boundaries
        (checkpoint/finalize), so PR 1's atomicity is unchanged.
        """
        self._check_open()
        self._segment_buffer.append(
            (segment.t_start, segment.v_start, segment.t_end, segment.v_end)
        )
        if len(self._segment_buffer) >= self.flush_rows:
            self._flush_segments()

    def add_segments_bulk(self, segments) -> None:
        self._check_open()
        self._segment_buffer.extend(
            (s.t_start, s.v_start, s.t_end, s.v_end) for s in segments
        )
        if len(self._segment_buffer) >= self.flush_rows:
            self._flush_segments()

    def load_segments(self) -> list:
        from ..types import DataSegment

        self._check_open()
        self._flush_segments()
        try:
            rows = self._conn.execute(
                "SELECT t_start, v_start, t_end, v_end FROM segments "
                "ORDER BY seq"
            ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"{self.path}: {exc}") from exc
        return [DataSegment(*row) for row in rows]

    def set_meta(self, key: str, value: float) -> None:
        self._check_open()
        # checkpoint boundaries commit via this path: everything buffered
        # must land in the same transaction as the meta row
        self._flush()

        def write() -> None:
            self._conn.execute(
                "INSERT OR REPLACE INTO segdiff_meta VALUES (?, ?)",
                (key, float(value)),
            )
            self._conn.commit()

        self._with_retry(write)

    def get_meta(self, key: str):
        self._check_open()
        try:
            row = self._conn.execute(
                "SELECT value FROM segdiff_meta WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            raise StorageError(f"{self.path}: {exc}") from exc
        return None if row is None else float(row[0])

    def drop_indexes(self) -> None:
        """Remove the B-trees (to measure pure feature size)."""
        self._check_open()
        for idx in INDEX_NAMES.values():
            self._conn.execute(f"DROP INDEX IF EXISTS {idx}")
        self._conn.commit()
        self._indexed = False

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def search(
        self, query: Query, mode: str = "index", cache: str = "warm"
    ) -> List[SegmentPair]:
        """Compatibility shim — union/dedup lives in the engine executor;
        this store contributes SQL-backed physical primitives only."""
        self._check_open()
        if mode not in ("index", "scan"):
            raise InvalidParameterError(
                f"mode must be 'index' or 'scan', got {mode!r}"
            )
        if cache not in ("warm", "cold"):
            raise InvalidParameterError(
                f"cache must be 'warm' or 'cold', got {cache!r}"
            )
        return self._engine_search(query, mode, cache=cache)

    # -- physical primitives (engine interface) ------------------------ #

    def _candidate_rows(self, sql: str, params: dict, cache: str,
                        guard=None):
        """Run one candidate query in the requested cache regime.

        With a ``guard``, rows are pulled in ``fetchmany`` chunks of
        ``guard.check_every`` with a deadline tick between chunks — a
        query never runs more than one chunk past its deadline even on a
        huge result set.  Without one, a single ``fetchall`` keeps the
        fast path unchanged.
        """
        import numpy as np

        if guard is None:
            def fetch(conn):
                return conn.execute(sql, params).fetchall()
        else:
            def fetch(conn):
                cursor = conn.execute(sql, params)
                rows: list = []
                while True:
                    guard.tick()
                    chunk = cursor.fetchmany(guard.check_every)
                    if not chunk:
                        return rows
                    rows.extend(chunk)

        if cache == "cold":
            # a fresh connection with a minimal page cache emulates the
            # paper's flushed-cache runs (DESIGN.md §5.7)
            if threading.get_ident() == self._owner_thread:
                self._with_retry(self._conn.commit)
            conn = self._connect()
            try:
                conn.execute("PRAGMA cache_size = -64")  # 64 KiB only
                rows = self._with_retry(lambda: fetch(conn))
            finally:
                conn.close()
        else:
            rows = self._with_retry(lambda: fetch(self._reader()))
        if not rows:
            return np.empty((0, 0))
        result = np.asarray(rows, dtype=float)
        obs_context.account(
            rows_scanned=int(result.shape[0]),
            bytes_decoded=int(result.nbytes),
        )
        return result

    def _point_hint(self, kind: str, access: str) -> str:
        if access == "scan":
            return "NOT INDEXED"
        if not self._indexed:
            raise StorageError("indexes not built; call finalize() first")
        return f"INDEXED BY {INDEX_NAMES[POINT_TABLES[kind]]}"

    def _line_hint(self, kind: str, access: str) -> str:
        if access == "scan":
            return "NOT INDEXED"
        if not self._indexed:
            raise StorageError("indexes not built; call finalize() first")
        return f"INDEXED BY {INDEX_NAMES[LINE_TABLES[kind]]}"

    def scan_points(self, kind, t_threshold=None, v_threshold=None,
                    cache="warm", guard=None):
        self._check_open()
        sql = point_candidate_sql(
            kind,
            POINT_TABLES[kind],
            self._point_hint(kind, "scan"),
            with_t=t_threshold is not None,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard
        )

    def probe_point_index(self, kind, t_threshold, v_threshold=None,
                          cache="warm", guard=None):
        self._check_open()
        sql = point_candidate_sql(
            kind,
            POINT_TABLES[kind],
            self._point_hint(kind, "index"),
            with_t=True,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard
        )

    def scan_lines(self, kind, t_threshold=None, v_threshold=None,
                   cache="warm", guard=None):
        self._check_open()
        sql = line_candidate_sql(
            kind,
            LINE_TABLES[kind],
            self._line_hint(kind, "scan"),
            with_t=t_threshold is not None,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard
        )

    def probe_line_index(self, kind, t_threshold, v_threshold=None,
                         cache="warm", guard=None):
        self._check_open()
        sql = line_candidate_sql(
            kind,
            LINE_TABLES[kind],
            self._line_hint(kind, "index"),
            with_t=True,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard
        )

    # -- batch columnar primitives (vectorized engine interface) -------- #

    #: fetchmany granularity of the unguarded array read path
    _ARRAY_CHUNK = 4096

    def _candidate_rows_array(self, sql: str, params: dict, cache: str,
                              guard, width: int):
        """Chunked ``fetchmany`` into ``(m, width)`` float64 blocks.

        The vectorized twin of :meth:`_candidate_rows`: rows are pulled
        in fixed-size chunks and converted chunk-at-a-time into column
        blocks that concatenate once at the end, so no full-result
        Python row list is ever materialized.  With a ``guard`` the
        chunk size is ``guard.check_every`` with a deadline tick per
        chunk — the same one-chunk-past-deadline bound as the scalar
        path.
        """
        import numpy as np

        chunk_rows = self._ARRAY_CHUNK if guard is None else guard.check_every

        def fetch(conn):
            cursor = conn.execute(sql, params)
            blocks: list = []
            while True:
                if guard is not None:
                    guard.tick()
                chunk = cursor.fetchmany(chunk_rows)
                if not chunk:
                    break
                blocks.append(
                    np.asarray(chunk, dtype=float).reshape(-1, width)
                )
            if not blocks:
                return np.empty((0, width))
            if len(blocks) == 1:
                return blocks[0]
            return np.concatenate(blocks, axis=0)

        if cache == "cold":
            if threading.get_ident() == self._owner_thread:
                self._with_retry(self._conn.commit)
            conn = self._connect()
            try:
                conn.execute("PRAGMA cache_size = -64")  # 64 KiB only
                result = self._with_retry(lambda: fetch(conn))
            finally:
                conn.close()
        else:
            result = self._with_retry(lambda: fetch(self._reader()))
        obs_context.account(
            rows_scanned=int(result.shape[0]),
            bytes_decoded=int(result.nbytes),
        )
        return result

    def scan_points_array(self, kind, t_threshold=None, v_threshold=None,
                          cache="warm", guard=None):
        self._check_open()
        sql = point_candidate_sql(
            kind,
            POINT_TABLES[kind],
            self._point_hint(kind, "scan"),
            with_t=t_threshold is not None,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows_array(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard, 6
        )

    def probe_point_index_array(self, kind, t_threshold, v_threshold=None,
                                cache="warm", guard=None):
        self._check_open()
        sql = point_candidate_sql(
            kind,
            POINT_TABLES[kind],
            self._point_hint(kind, "index"),
            with_t=True,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows_array(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard, 6
        )

    def scan_lines_array(self, kind, t_threshold=None, v_threshold=None,
                         cache="warm", guard=None):
        self._check_open()
        sql = line_candidate_sql(
            kind,
            LINE_TABLES[kind],
            self._line_hint(kind, "scan"),
            with_t=t_threshold is not None,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows_array(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard, 8
        )

    def probe_line_index_array(self, kind, t_threshold, v_threshold=None,
                               cache="warm", guard=None):
        self._check_open()
        sql = line_candidate_sql(
            kind,
            LINE_TABLES[kind],
            self._line_hint(kind, "index"),
            with_t=True,
            with_v=v_threshold is not None,
        )
        return self._candidate_rows_array(
            sql, {"T": t_threshold, "V": v_threshold}, cache, guard, 8
        )

    def _reader(self) -> sqlite3.Connection:
        """The connection to read from in the current thread."""
        if threading.get_ident() == self._owner_thread:
            return self._conn
        conn = getattr(self._read_conns, "conn", None)
        if conn is None:
            conn = self._connect(cross_thread=True)
            self._read_conns.conn = conn
            with self._spawn_lock:
                self._spawned_conns.append(conn)
        return conn

    _TABLE_COLS = {
        "drop_points": ("dt", "dv", "t_d", "t_c", "t_b", "t_a"),
        "jump_points": ("dt", "dv", "t_d", "t_c", "t_b", "t_a"),
        "drop_lines": (
            "dt1", "dv1", "dt2", "dv2", "t_d", "t_c", "t_b", "t_a"
        ),
        "jump_lines": (
            "dt1", "dv1", "dt2", "dv2", "t_d", "t_c", "t_b", "t_a"
        ),
    }

    def read_table_rows(self, table: str, start: int = 0,
                        stop: Optional[int] = None):
        """Insertion-order row range via ``ORDER BY rowid``.

        Feature tables are insert-only, so rowids are the dense 1-based
        insertion sequence — exactly the storage order the checksum
        trees are defined over.
        """
        import numpy as np

        self._check_open()
        cols = self._TABLE_COLS.get(table)
        if cols is None:
            raise InvalidParameterError(f"unknown feature table {table!r}")
        self._flush()
        limit = -1 if stop is None else max(0, stop - start)
        rows = self._with_retry(
            lambda: self._conn.execute(
                f"SELECT {', '.join(cols)} FROM {table} "
                "ORDER BY rowid LIMIT ? OFFSET ?",
                (limit, start),
            ).fetchall()
        )
        if not rows:
            return np.empty((0, len(cols)))
        return np.asarray(rows, dtype=float)

    def replace_table_rows(self, table: str, start: int, rows) -> None:
        """Overwrite rows by rowid (repair write path); commits, so a
        repair is durable on its own like a checkpoint."""
        import numpy as np

        self._check_open()
        cols = self._TABLE_COLS.get(table)
        if cols is None:
            raise InvalidParameterError(f"unknown feature table {table!r}")
        self._flush()
        rows = np.asarray(rows, dtype=float).reshape(-1, len(cols))
        total = self._conn.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()[0]
        if start < 0 or start + rows.shape[0] > total:
            raise StorageError(
                f"row range [{start}, {start + rows.shape[0]}) outside "
                f"{table} of {total} rows"
            )
        assignments = ", ".join(f"{c} = ?" for c in cols)
        params = [
            tuple(row) + (start + i + 1,)  # rowids are 1-based
            for i, row in enumerate(rows.tolist())
        ]

        def write() -> None:
            self._conn.executemany(
                f"UPDATE {table} SET {assignments} WHERE rowid = ?", params
            )
            self._conn.commit()

        self._with_retry(write)

    def sample_points(self, kind: str, n: int):
        """Evenly strided (dt, dv) sample of the point table (see base)."""
        import numpy as np

        self._check_open()
        if kind not in POINT_TABLES:
            raise InvalidParameterError(f"unknown kind {kind!r}")
        self._flush()
        table = POINT_TABLES[kind]
        total = self._conn.execute(
            f"SELECT COUNT(*) FROM {table}"
        ).fetchone()[0]
        if total == 0:
            return None
        step = max(1, total // max(n, 1))
        rows = self._conn.execute(
            f"SELECT dt, dv FROM {table} WHERE rowid % ? = 0 LIMIT ?",
            (step, n),
        ).fetchall()
        if not rows:  # tiny tables whose rowids all miss the stride
            rows = self._conn.execute(
                f"SELECT dt, dv FROM {table} LIMIT ?", (n,)
            ).fetchall()
        return np.asarray(rows, dtype=float)

    def extreme_feature_dv(self, kind: str):
        """Min (drop) / max (jump) stored Δv across points and lines."""
        self._check_open()
        if kind not in POINT_TABLES:
            raise InvalidParameterError(f"unknown kind {kind!r}")
        self._flush()
        agg = "MIN" if kind == "drop" else "MAX"
        p = self._conn.execute(
            f"SELECT {agg}(dv) FROM {POINT_TABLES[kind]}"
        ).fetchone()[0]
        l1, l2 = self._conn.execute(
            f"SELECT {agg}(dv1), {agg}(dv2) FROM {LINE_TABLES[kind]}"
        ).fetchone()
        values = [v for v in (p, l1, l2) if v is not None]
        if not values:
            return None
        return float(min(values) if kind == "drop" else max(values))

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def counts(self) -> StoreCounts:
        self._check_open()
        self._flush()
        get = lambda t: self._conn.execute(  # noqa: E731
            f"SELECT COUNT(*) FROM {t}"
        ).fetchone()[0]
        return StoreCounts(
            drop_points=get("drop_points"),
            drop_lines=get("drop_lines"),
            jump_points=get("jump_points"),
            jump_lines=get("jump_lines"),
        )

    def _dbstat_bytes(self) -> Optional[Dict[str, int]]:
        try:
            rows = self._conn.execute(
                "SELECT name, SUM(pgsize) FROM dbstat GROUP BY name"
            ).fetchall()
        except sqlite3.Error:
            return None
        return {name: int(size) for name, size in rows}

    def feature_bytes(self) -> int:
        self._check_open()
        self._flush()
        sizes = self._dbstat_bytes()
        if sizes is not None:
            return sum(sizes.get(t, 0) for t in SEGDIFF_TABLES)
        counts = self.counts()
        # fallback model: 8 bytes per column + ~14 bytes row overhead
        return (counts.drop_points + counts.jump_points) * (6 * 8 + 14) + (
            counts.drop_lines + counts.jump_lines
        ) * (8 * 8 + 14)

    def index_bytes(self) -> int:
        self._check_open()
        if not self._indexed:
            return 0
        sizes = self._dbstat_bytes()
        if sizes is not None:
            return sum(sizes.get(i, 0) for i in INDEX_NAMES.values())
        counts = self.counts()
        return (counts.drop_points + counts.jump_points) * (2 * 8 + 12) + (
            counts.drop_lines + counts.jump_lines
        ) * (4 * 8 + 12)

    def close(self) -> None:
        if self._closed:
            return
        with self._spawn_lock:
            for conn in self._spawned_conns:
                try:
                    conn.close()
                except sqlite3.Error:  # already closed by its thread
                    pass
            self._spawned_conns = []
        self._conn.close()
        self._closed = True
        _OPEN_STORES.dec()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("store is closed")

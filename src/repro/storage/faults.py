"""Deterministic I/O fault injection for durability testing.

The MiniDB pager and WAL accept an ``opener`` hook; a
:class:`FaultInjector` provides one that wraps every file it opens in a
:class:`FaultyFile`.  All wrapped files share one operation counter, so a
:class:`FaultPolicy` can say "fail the Nth write across the whole
database" — the precision needed to enumerate every crash point of a
workload::

    injector = FaultInjector(FaultPolicy(fail_at=17, mode="crash"))
    db = MiniDatabase(path, opener=injector.open)
    try:
        workload(db)
    except FaultInjected:
        pass                       # the "machine" died mid-write
    injector.close_all()
    db = MiniDatabase(path)        # recovery replays the WAL
    assert db.check() == []

Fault modes:

* ``"crash"`` — the op does nothing; this and every later I/O raises
  :class:`FaultInjected`.  Because files are opened unbuffered, the disk
  state is frozen exactly at the preceding operation, like a power cut.
* ``"torn"`` — the write persists only its first ``torn_bytes`` bytes,
  then the file freezes as for ``"crash"`` — a partial sector write.
* ``"error"`` — the op raises :class:`OSError` once and the file keeps
  working; a transient fault the caller may retry or roll back.
* ``"enospc"`` — the op raises ``OSError(ENOSPC)`` once and the file
  keeps working; a full disk the caller must roll back from without
  losing the previous durable state.

The live tier does its I/O through whole-file operations rather than an
``opener`` hook, so it is faulted one level up: :class:`RealFS` is the
filesystem facade (open / replace / remove / fsync) the live index and
its WAL call for every counted operation, and :class:`FaultyFS` is the
drop-in that routes those calls through a :class:`FaultInjector` — one
shared op counter across WAL appends, partition seal writes, and
manifest installs, so the crash matrix can enumerate every fault point
of an ingest workload.

:class:`FaultInjected` deliberately does **not** derive from
``ReproError``: library code must never accidentally swallow a simulated
power cut.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..errors import StorageError

__all__ = [
    "FaultInjected",
    "FaultPolicy",
    "FaultInjector",
    "FaultyFile",
    "RealFS",
    "FaultyFS",
    "ReadFaultPolicy",
    "FaultyStoreWrapper",
]


class FaultInjected(Exception):
    """A simulated I/O fault (crash, torn write, or transient error)."""


@dataclass
class FaultPolicy:
    """When and how to fail.

    Parameters
    ----------
    fail_at:
        1-based index of the counted operation that triggers the fault;
        ``None`` disables injection (pass-through).
    mode:
        ``"crash"``, ``"torn"``, ``"error"``, or ``"enospc"`` (see
        module docstring).
    torn_bytes:
        For ``"torn"``: how many bytes of the failing write reach disk.
        A deliberately odd default lands mid-record in every structure.
    ops:
        Which operations count toward ``fail_at``.  ``"replace"`` is
        only issued by the filesystem facade (:class:`FaultyFS`);
        including it by default is harmless for opener-hook users like
        MiniDB, which never perform one.
    """

    fail_at: Optional[int] = None
    mode: str = "crash"
    torn_bytes: int = 97
    ops: Tuple[str, ...] = ("write", "truncate", "fsync", "replace")

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "torn", "error", "enospc"):
            raise ValueError(f"unknown fault mode {self.mode!r}")


class FaultInjector:
    """Shared op counter + policy for a set of :class:`FaultyFile` s.

    Use :attr:`op_count` after a fault-free run to learn how many crash
    points a workload exposes, then re-run once per point.
    """

    def __init__(self, policy: Optional[FaultPolicy] = None) -> None:
        self.policy = policy or FaultPolicy()
        self.op_count = 0
        self.crashed = False
        self._files: List[FaultyFile] = []

    def open(self, path: str, mode: str) -> "FaultyFile":
        """The ``opener`` hook: open ``path`` unbuffered and wrap it."""
        if self.crashed:
            raise FaultInjected("cannot open files after a crash")
        raw = open(path, mode, buffering=0)
        wrapped = FaultyFile(raw, self)
        self._files.append(wrapped)
        return wrapped

    def arm(self, policy: FaultPolicy) -> None:
        """Swap in a new policy (counter keeps running)."""
        self.policy = policy

    def _account(self, op: str) -> Optional[str]:
        """Count one op; return the fault mode to apply, if any."""
        if self.crashed:
            raise FaultInjected(f"{op} after simulated crash")
        if op not in self.policy.ops:
            return None
        self.op_count += 1
        if self.policy.fail_at is not None and self.op_count == self.policy.fail_at:
            return self.policy.mode
        return None

    def close_all(self) -> None:
        """Release every OS handle (safe after a crash)."""
        for f in self._files:
            f._raw_close()
        self._files = []


class FaultyFile:
    """An unbuffered binary file that fails on command (see module doc)."""

    def __init__(self, raw, injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    # -- counted, failable operations ---------------------------------- #

    def write(self, data: bytes) -> int:
        fault = self._injector._account("write")
        if fault == "crash":
            self._injector.crashed = True
            raise FaultInjected("injected crash during write")
        if fault == "torn":
            self._raw.write(data[: self._injector.policy.torn_bytes])
            self._injector.crashed = True
            raise FaultInjected(
                f"injected torn write ({self._injector.policy.torn_bytes}"
                f"/{len(data)} bytes reached disk)"
            )
        if fault == "error":
            raise OSError("injected transient I/O error")
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected disk-full write")
        return self._raw.write(data)

    def truncate(self, size: Optional[int] = None) -> int:
        fault = self._injector._account("truncate")
        if fault in ("crash", "torn"):
            self._injector.crashed = True
            raise FaultInjected("injected crash during truncate")
        if fault == "error":
            raise OSError("injected transient I/O error")
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected disk-full truncate")
        return self._raw.truncate(size)

    def fsync(self) -> None:
        fault = self._injector._account("fsync")
        if fault in ("crash", "torn"):
            self._injector.crashed = True
            raise FaultInjected("injected crash during fsync")
        if fault == "error":
            raise OSError("injected transient I/O error")
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected disk-full fsync")
        os.fsync(self._raw.fileno())

    # -- pass-through operations --------------------------------------- #

    def read(self, n: int = -1) -> bytes:
        if self._injector.crashed:
            raise FaultInjected("read after simulated crash")
        return self._raw.read(n)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        if self._injector.crashed:
            raise FaultInjected("seek after simulated crash")
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def flush(self) -> None:
        if self._injector.crashed:
            raise FaultInjected("flush after simulated crash")
        # unbuffered: nothing to do

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        # closing is always allowed — the state on disk stays frozen
        # because writes are unbuffered
        self._raw_close()

    def _raw_close(self) -> None:
        try:
            self._raw.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._raw.closed


# ---------------------------------------------------------------------- #
# filesystem facade (live-tier write path)
# ---------------------------------------------------------------------- #


class RealFS:
    """The live tier's filesystem facade: the whole-file operations the
    live index, its WAL, and the partition manifest issue — each one an
    injection point when a :class:`FaultyFS` stands in.

    Files are opened **unbuffered**, so under injection the disk state
    freezes exactly at the last completed operation (a power cut), and
    in production a completed ``write`` has at least reached the kernel.
    """

    def open(self, path: str, mode: str):
        return open(path, mode, buffering=0)

    def replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync_file(self, path: str) -> None:
        """fsync a closed file by path (seal write barrier)."""
        fd = os.open(path, os.O_RDWR)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, directory: str) -> None:
        """Best-effort directory fsync (makes a rename durable).

        Swallows ``OSError``: some filesystems refuse directory fsync,
        and by the time it runs the rename is already *installed* — a
        failure here must not trick the caller into rolling back a
        commit that readers can see.
        """
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


class FaultyFS(RealFS):
    """A :class:`RealFS` whose every operation is counted and failable.

    Shares the :class:`FaultInjector`'s op counter with any opener-hook
    files the same injector wraps, so ``fail_at`` enumerates the crash
    points of the *whole* ingest path — WAL appends, seal writes,
    manifest installs — with one sweep.
    """

    def __init__(self, injector: FaultInjector) -> None:
        self.injector = injector

    def open(self, path: str, mode: str) -> FaultyFile:
        return self.injector.open(path, mode)

    def replace(self, src: str, dst: str) -> None:
        fault = self.injector._account("replace")
        if fault in ("crash", "torn"):
            self.injector.crashed = True
            raise FaultInjected(f"injected crash during replace -> {dst}")
        if fault == "error":
            raise OSError("injected transient I/O error in replace")
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected disk-full replace")
        os.replace(src, dst)

    def remove(self, path: str) -> None:
        if self.injector.crashed:
            raise FaultInjected("remove after simulated crash")
        os.remove(path)

    def fsync_file(self, path: str) -> None:
        fault = self.injector._account("fsync")
        if fault == "crash":
            self.injector.crashed = True
            raise FaultInjected(f"injected crash during fsync of {path}")
        if fault == "torn":
            # a crash while flushing a freshly-written file: model the
            # file surviving only as a partial prefix — the torn
            # partition the scrub pass must quarantine
            try:
                with open(path, "r+b") as fh:
                    fh.truncate(self.injector.policy.torn_bytes)
            except OSError:
                pass
            self.injector.crashed = True
            raise FaultInjected(
                f"injected torn file during fsync of {path}"
            )
        if fault == "error":
            raise OSError("injected transient I/O error in fsync")
        if fault == "enospc":
            raise OSError(errno.ENOSPC, "injected disk-full fsync")
        super().fsync_file(path)

    def fsync_dir(self, directory: str) -> None:
        fault = self.injector._account("fsync")
        if fault in ("crash", "torn"):
            self.injector.crashed = True
            raise FaultInjected(
                f"injected crash during directory fsync of {directory}"
            )
        if fault in ("error", "enospc"):
            # RealFS.fsync_dir swallows OSError by contract (the rename
            # is already installed), so transient modes are a no-op here
            return
        super().fsync_dir(directory)


# ---------------------------------------------------------------------- #
# read-path chaos harness (engine resilience testing)
# ---------------------------------------------------------------------- #


@dataclass
class ReadFaultPolicy:
    """When and how a :class:`FaultyStoreWrapper` misbehaves.

    Faults key off the wrapper's global 1-based read-call counter (every
    physical read primitive increments it), so a schedule like
    ``error_at={2}`` means "the second primitive call of the workload
    fails" regardless of which operator issues it.

    Parameters
    ----------
    error_at:
        Call indices that raise :class:`~repro.errors.StorageError` —
        the *typed* failure the engine's breaker and batch isolation
        handle (unlike :class:`FaultInjected`, which models a power cut
        and must never be swallowed).
    latency_at:
        Call indices delayed by ``latency_s`` before proceeding.
    hang_at:
        Call indices that hang "forever": the wrapper sleeps in
        ``hang_slice_s`` slices, checking the query's guard between
        slices, so a deadline still cancels the call cooperatively
        within one slice.  Without a guard the hang aborts with
        :class:`~repro.errors.StorageError` after ``hang_cap_s`` — a
        safety net so an unguarded test cannot wedge the suite.
    fail_next:
        Countdown of calls to fail with ``StorageError`` starting now,
        after which the store heals — the knob for driving a circuit
        breaker open and then letting its half-open probe succeed.
    corrupt_at:
        Call indices whose *result* is silently corrupted: the wrapper
        copies the returned row array and mutates one row (never the
        store's own arrays), modelling bit rot that no exception
        announces — the failure mode checksum anti-entropy exists to
        catch.  ``corrupt_mode="flip"`` perturbs one value of the row
        by ``corrupt_delta``; ``"replace"`` zeroes the whole row.
    """

    error_at: Set[int] = field(default_factory=set)
    latency_at: Set[int] = field(default_factory=set)
    hang_at: Set[int] = field(default_factory=set)
    corrupt_at: Set[int] = field(default_factory=set)
    corrupt_mode: str = "flip"
    corrupt_delta: float = 1.0
    fail_next: int = 0
    latency_s: float = 0.05
    hang_slice_s: float = 0.02
    hang_cap_s: float = 30.0

    def __post_init__(self) -> None:
        if self.corrupt_mode not in ("flip", "replace"):
            raise ValueError(
                f"unknown corrupt mode {self.corrupt_mode!r}"
            )


class FaultyStoreWrapper:
    """Inject errors/latency/hangs into any feature store's read path.

    Wraps a finalized :class:`~repro.storage.base.FeatureStore` and
    intercepts the four physical read primitives (plus the optional grid
    probe); everything else — counts, sampling, ``BACKEND``,
    ``THREAD_SAFE_READS``, pager stats — delegates to the wrapped store,
    so a :class:`~repro.engine.session.QuerySession` over the wrapper
    behaves identically to one over the store until a fault fires::

        chaotic = FaultyStoreWrapper(store, ReadFaultPolicy(error_at={1}))
        session = QuerySession(chaotic, resilience=policy)
    """

    READ_PRIMITIVES = (
        "scan_points",
        "probe_point_index",
        "scan_lines",
        "probe_line_index",
        "scan_points_array",
        "probe_point_index_array",
        "scan_lines_array",
        "probe_line_index_array",
        "probe_point_grid",
        "read_table_rows",
    )

    def __init__(self, store, policy: Optional[ReadFaultPolicy] = None):
        self._store = store
        self.policy = policy or ReadFaultPolicy()
        #: Global count of read-primitive calls (fault schedule domain).
        self.read_calls = 0
        #: How many faults actually fired.
        self.faults_injected = 0
        self._lock = threading.Lock()

    def __getattr__(self, name):
        # everything not intercepted behaves exactly like the real store
        return getattr(self._store, name)

    def reset(self) -> None:
        """Zero the call counter (start a fresh fault schedule)."""
        with self._lock:
            self.read_calls = 0
            self.faults_injected = 0

    # -- fault machinery ------------------------------------------------ #

    def _inject(self, op: str, guard) -> bool:
        """Apply the schedule for one call; returns whether the call's
        *result* must be corrupted (see :meth:`_corrupt`)."""
        with self._lock:
            self.read_calls += 1
            call = self.read_calls
            fail = False
            if self.policy.fail_next > 0:
                self.policy.fail_next -= 1
                fail = True
            if fail or call in self.policy.error_at:
                self.faults_injected += 1
                raise StorageError(
                    f"injected read fault at call {call} ({op})"
                )
            delay = call in self.policy.latency_at
            hang = call in self.policy.hang_at
            corrupt = call in self.policy.corrupt_at
            if delay or hang or corrupt:
                self.faults_injected += 1
        if delay:
            time.sleep(self.policy.latency_s)
        if hang:
            self._hang(op, guard)
        return corrupt

    def _corrupt(self, rows):
        """Silently damage one row of a *copy* of the result.

        The wrapped store's arrays are never touched (the memory backend
        hands out its real frozen arrays), so the corruption is confined
        to this read — exactly a bad sector surfacing on one replica.
        """
        import numpy as np

        rows = np.array(rows, dtype=float, copy=True)
        if rows.size == 0:
            return rows
        if self.policy.corrupt_mode == "replace":
            rows[0, :] = 0.0
        else:
            rows[0, min(1, rows.shape[1] - 1)] += self.policy.corrupt_delta
        return rows

    def _hang(self, op: str, guard) -> None:
        """Sleep 'forever' in small slices, staying cancellable."""
        cap = time.monotonic() + self.policy.hang_cap_s
        while True:
            if guard is not None:
                guard.tick()  # raises QueryTimeout past the deadline
            if time.monotonic() >= cap:
                raise StorageError(
                    f"injected hang in {op} exceeded the "
                    f"{self.policy.hang_cap_s:g}s safety cap (no guard "
                    "cancelled it)"
                )
            time.sleep(self.policy.hang_slice_s)

    @staticmethod
    def _guard_kw(guard) -> dict:
        return {} if guard is None else {"guard": guard}

    # -- intercepted read primitives ------------------------------------ #

    def scan_points(self, kind, t_threshold=None, v_threshold=None,
                    cache="warm", guard=None):
        corrupt = self._inject("scan_points", guard)
        rows = self._store.scan_points(
            kind, t_threshold=t_threshold, v_threshold=v_threshold,
            cache=cache, **self._guard_kw(guard),
        )
        return self._corrupt(rows) if corrupt else rows

    def probe_point_index(self, kind, t_threshold, v_threshold=None,
                          cache="warm", guard=None):
        corrupt = self._inject("probe_point_index", guard)
        rows = self._store.probe_point_index(
            kind, t_threshold, v_threshold=v_threshold, cache=cache,
            **self._guard_kw(guard),
        )
        return self._corrupt(rows) if corrupt else rows

    def scan_lines(self, kind, t_threshold=None, v_threshold=None,
                   cache="warm", guard=None):
        corrupt = self._inject("scan_lines", guard)
        rows = self._store.scan_lines(
            kind, t_threshold=t_threshold, v_threshold=v_threshold,
            cache=cache, **self._guard_kw(guard),
        )
        return self._corrupt(rows) if corrupt else rows

    def probe_line_index(self, kind, t_threshold, v_threshold=None,
                         cache="warm", guard=None):
        corrupt = self._inject("probe_line_index", guard)
        rows = self._store.probe_line_index(
            kind, t_threshold, v_threshold=v_threshold, cache=cache,
            **self._guard_kw(guard),
        )
        return self._corrupt(rows) if corrupt else rows

    # The columnar twins share the same global call counter, so a fault
    # schedule written for the scalar path (one call per operator) fires
    # at the same workload points on the vectorized path.  If the
    # wrapped store predates the array interface, fall back to its
    # scalar primitive and adapt the rows — the wrapper stays usable
    # around any duck-typed store.

    def _array_fallback(self, scalar_name, width, kind, args, kw):
        from .base import rows_to_block

        return rows_to_block(
            getattr(self._store, scalar_name)(kind, *args, **kw), width
        )

    def scan_points_array(self, kind, t_threshold=None, v_threshold=None,
                          cache="warm", guard=None):
        corrupt = self._inject("scan_points_array", guard)
        kw = dict(t_threshold=t_threshold, v_threshold=v_threshold,
                  cache=cache, **self._guard_kw(guard))
        fn = getattr(self._store, "scan_points_array", None)
        rows = (fn(kind, **kw) if fn is not None
                else self._array_fallback("scan_points", 6, kind, (), kw))
        return self._corrupt(rows) if corrupt else rows

    def probe_point_index_array(self, kind, t_threshold, v_threshold=None,
                                cache="warm", guard=None):
        corrupt = self._inject("probe_point_index_array", guard)
        kw = dict(v_threshold=v_threshold, cache=cache,
                  **self._guard_kw(guard))
        fn = getattr(self._store, "probe_point_index_array", None)
        rows = (fn(kind, t_threshold, **kw) if fn is not None
                else self._array_fallback("probe_point_index", 6, kind,
                                          (t_threshold,), kw))
        return self._corrupt(rows) if corrupt else rows

    def scan_lines_array(self, kind, t_threshold=None, v_threshold=None,
                         cache="warm", guard=None):
        corrupt = self._inject("scan_lines_array", guard)
        kw = dict(t_threshold=t_threshold, v_threshold=v_threshold,
                  cache=cache, **self._guard_kw(guard))
        fn = getattr(self._store, "scan_lines_array", None)
        rows = (fn(kind, **kw) if fn is not None
                else self._array_fallback("scan_lines", 8, kind, (), kw))
        return self._corrupt(rows) if corrupt else rows

    def probe_line_index_array(self, kind, t_threshold, v_threshold=None,
                               cache="warm", guard=None):
        corrupt = self._inject("probe_line_index_array", guard)
        kw = dict(v_threshold=v_threshold, cache=cache,
                  **self._guard_kw(guard))
        fn = getattr(self._store, "probe_line_index_array", None)
        rows = (fn(kind, t_threshold, **kw) if fn is not None
                else self._array_fallback("probe_line_index", 8, kind,
                                          (t_threshold,), kw))
        return self._corrupt(rows) if corrupt else rows

    def probe_point_grid(self, kind, t_threshold, v_threshold, guard=None):
        corrupt = self._inject("probe_point_grid", guard)
        rows = self._store.probe_point_grid(kind, t_threshold, v_threshold)
        return self._corrupt(rows) if corrupt else rows

    def read_table_rows(self, table, start=0, stop=None, guard=None):
        corrupt = self._inject("read_table_rows", guard)
        rows = self._store.read_table_rows(table, start, stop)
        return self._corrupt(rows) if corrupt else rows

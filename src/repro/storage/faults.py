"""Deterministic I/O fault injection for durability testing.

The MiniDB pager and WAL accept an ``opener`` hook; a
:class:`FaultInjector` provides one that wraps every file it opens in a
:class:`FaultyFile`.  All wrapped files share one operation counter, so a
:class:`FaultPolicy` can say "fail the Nth write across the whole
database" — the precision needed to enumerate every crash point of a
workload::

    injector = FaultInjector(FaultPolicy(fail_at=17, mode="crash"))
    db = MiniDatabase(path, opener=injector.open)
    try:
        workload(db)
    except FaultInjected:
        pass                       # the "machine" died mid-write
    injector.close_all()
    db = MiniDatabase(path)        # recovery replays the WAL
    assert db.check() == []

Fault modes:

* ``"crash"`` — the op does nothing; this and every later I/O raises
  :class:`FaultInjected`.  Because files are opened unbuffered, the disk
  state is frozen exactly at the preceding operation, like a power cut.
* ``"torn"`` — the write persists only its first ``torn_bytes`` bytes,
  then the file freezes as for ``"crash"`` — a partial sector write.
* ``"error"`` — the op raises :class:`OSError` once and the file keeps
  working; a transient fault the caller may retry or roll back.

:class:`FaultInjected` deliberately does **not** derive from
``ReproError``: library code must never accidentally swallow a simulated
power cut.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["FaultInjected", "FaultPolicy", "FaultInjector", "FaultyFile"]


class FaultInjected(Exception):
    """A simulated I/O fault (crash, torn write, or transient error)."""


@dataclass
class FaultPolicy:
    """When and how to fail.

    Parameters
    ----------
    fail_at:
        1-based index of the counted operation that triggers the fault;
        ``None`` disables injection (pass-through).
    mode:
        ``"crash"``, ``"torn"``, or ``"error"`` (see module docstring).
    torn_bytes:
        For ``"torn"``: how many bytes of the failing write reach disk.
        A deliberately odd default lands mid-record in every structure.
    ops:
        Which operations count toward ``fail_at``.
    """

    fail_at: Optional[int] = None
    mode: str = "crash"
    torn_bytes: int = 97
    ops: Tuple[str, ...] = ("write", "truncate", "fsync")

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "torn", "error"):
            raise ValueError(f"unknown fault mode {self.mode!r}")


class FaultInjector:
    """Shared op counter + policy for a set of :class:`FaultyFile` s.

    Use :attr:`op_count` after a fault-free run to learn how many crash
    points a workload exposes, then re-run once per point.
    """

    def __init__(self, policy: Optional[FaultPolicy] = None) -> None:
        self.policy = policy or FaultPolicy()
        self.op_count = 0
        self.crashed = False
        self._files: List[FaultyFile] = []

    def open(self, path: str, mode: str) -> "FaultyFile":
        """The ``opener`` hook: open ``path`` unbuffered and wrap it."""
        if self.crashed:
            raise FaultInjected("cannot open files after a crash")
        raw = open(path, mode, buffering=0)
        wrapped = FaultyFile(raw, self)
        self._files.append(wrapped)
        return wrapped

    def arm(self, policy: FaultPolicy) -> None:
        """Swap in a new policy (counter keeps running)."""
        self.policy = policy

    def _account(self, op: str) -> Optional[str]:
        """Count one op; return the fault mode to apply, if any."""
        if self.crashed:
            raise FaultInjected(f"{op} after simulated crash")
        if op not in self.policy.ops:
            return None
        self.op_count += 1
        if self.policy.fail_at is not None and self.op_count == self.policy.fail_at:
            return self.policy.mode
        return None

    def close_all(self) -> None:
        """Release every OS handle (safe after a crash)."""
        for f in self._files:
            f._raw_close()
        self._files = []


class FaultyFile:
    """An unbuffered binary file that fails on command (see module doc)."""

    def __init__(self, raw, injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    # -- counted, failable operations ---------------------------------- #

    def write(self, data: bytes) -> int:
        fault = self._injector._account("write")
        if fault == "crash":
            self._injector.crashed = True
            raise FaultInjected("injected crash during write")
        if fault == "torn":
            self._raw.write(data[: self._injector.policy.torn_bytes])
            self._injector.crashed = True
            raise FaultInjected(
                f"injected torn write ({self._injector.policy.torn_bytes}"
                f"/{len(data)} bytes reached disk)"
            )
        if fault == "error":
            raise OSError("injected transient I/O error")
        return self._raw.write(data)

    def truncate(self, size: Optional[int] = None) -> int:
        fault = self._injector._account("truncate")
        if fault in ("crash", "torn"):
            self._injector.crashed = True
            raise FaultInjected("injected crash during truncate")
        if fault == "error":
            raise OSError("injected transient I/O error")
        return self._raw.truncate(size)

    def fsync(self) -> None:
        fault = self._injector._account("fsync")
        if fault in ("crash", "torn"):
            self._injector.crashed = True
            raise FaultInjected("injected crash during fsync")
        if fault == "error":
            raise OSError("injected transient I/O error")
        os.fsync(self._raw.fileno())

    # -- pass-through operations --------------------------------------- #

    def read(self, n: int = -1) -> bytes:
        if self._injector.crashed:
            raise FaultInjected("read after simulated crash")
        return self._raw.read(n)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:
        if self._injector.crashed:
            raise FaultInjected("seek after simulated crash")
        return self._raw.seek(offset, whence)

    def tell(self) -> int:
        return self._raw.tell()

    def flush(self) -> None:
        if self._injector.crashed:
            raise FaultInjected("flush after simulated crash")
        # unbuffered: nothing to do

    def fileno(self) -> int:
        return self._raw.fileno()

    def close(self) -> None:
        # closing is always allowed — the state on disk stays frozen
        # because writes are unbuffered
        self._raw_close()

    def _raw_close(self) -> None:
        try:
            self._raw.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._raw.closed

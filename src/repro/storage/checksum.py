"""Merkle-style segment-checksum trees for shard anti-entropy.

A replica of a SegDiff shard can silently diverge from its source — bit
rot, a botched migration, a partial repair.  Re-reading every feature
row on both sides to find out is O(n); the divide-and-conquer protocol
of data-diff (SNIPPETS.md) needs only O(log n) checksum *comparisons*
per divergent row: split each table into fixed-size leaf ranges,
checksum each range, hash the range checksums pairwise up to a root,
and descend only into subtrees whose digests disagree.

The tree covers the four feature tables of one store, rows taken in
**storage order** (insertion order — deterministic because every replica
is produced by the same deterministic build pipeline, or by copying row
ranges from a peer).  Digests are CRC32: fast, dependency-free, and
exactly representable as a float64, which lets a tree persist through
the stores' scalar ``set_meta``/``get_meta`` interface so the
authoritative tree built at finalize travels inside the shard file
itself.

Verification compares two trees top-down (:func:`diff_trees`) and
reports the mismatching *leaf row ranges*; repair then re-copies only
those ranges (:meth:`repro.engine.sharding.ShardedIndex.repair`).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import InvalidParameterError, StorageError
from ..obs.metrics import REGISTRY

__all__ = [
    "DEFAULT_LEAF_SIZE",
    "ChecksumTree",
    "build_tree",
    "store_trees",
    "diff_trees",
    "persist_trees",
    "load_trees",
    "TABLES",
]

#: Feature rows per leaf range.  64 keeps a week-scale shard's tree at a
#: few hundred nodes while still localizing a single divergent row to a
#: small re-copy window.
DEFAULT_LEAF_SIZE = 64

#: The four feature tables a tree set covers, in canonical order.
TABLES = ("drop_points", "drop_lines", "jump_points", "jump_lines")

RANGES_CHECKED = REGISTRY.counter(
    "repro_verify_ranges_checked",
    "Checksum ranges (tree nodes) compared during verify()",
)
RANGES_MISMATCHED = REGISTRY.counter(
    "repro_verify_ranges_mismatched",
    "Checksum ranges found divergent during verify()",
)

_META_PREFIX = "cks"


def _crc_rows(rows: np.ndarray) -> int:
    """CRC32 of a row range's float64 bytes (0 for an empty range)."""
    arr = np.ascontiguousarray(rows, dtype=float)
    return zlib.crc32(arr.tobytes())


def _crc_pair(left: int, right: int) -> int:
    return zlib.crc32(struct.pack("<II", left, right))


@dataclass(frozen=True)
class ChecksumTree:
    """The checksum tree of one feature table.

    ``levels[0]`` holds the leaf digests (one per ``leaf_size`` rows,
    at least one even for an empty table); each higher level pairs the
    one below; ``levels[-1]`` is the single root.
    """

    table: str
    leaf_size: int
    n_rows: int
    levels: Tuple[Tuple[int, ...], ...]

    @property
    def root(self) -> int:
        return self.levels[-1][0]

    @property
    def n_leaves(self) -> int:
        return len(self.levels[0])

    def leaf_range(self, leaf: int) -> Tuple[int, int]:
        """The ``[start, stop)`` row range leaf ``leaf`` covers."""
        start = leaf * self.leaf_size
        return start, min(start + self.leaf_size, self.n_rows)

    def leaf_of_row(self, row: int) -> int:
        return row // self.leaf_size


def build_tree(
    rows: np.ndarray, table: str, leaf_size: int = DEFAULT_LEAF_SIZE
) -> ChecksumTree:
    """Checksum ``rows`` (storage order) into a :class:`ChecksumTree`."""
    if leaf_size < 1:
        raise InvalidParameterError("leaf_size must be >= 1")
    rows = np.asarray(rows, dtype=float)
    n = int(rows.shape[0])
    leaves = [
        _crc_rows(rows[i : i + leaf_size]) for i in range(0, n, leaf_size)
    ] or [_crc_rows(rows[:0])]
    levels: List[Tuple[int, ...]] = [tuple(leaves)]
    while len(levels[-1]) > 1:
        below = levels[-1]
        above = [
            _crc_pair(below[i], below[i + 1])
            if i + 1 < len(below)
            else below[i]
            for i in range(0, len(below), 2)
        ]
        levels.append(tuple(above))
    return ChecksumTree(
        table=table, leaf_size=int(leaf_size), n_rows=n, levels=tuple(levels)
    )


def store_trees(
    store, leaf_size: int = DEFAULT_LEAF_SIZE
) -> Dict[str, ChecksumTree]:
    """Recompute the tree of every feature table from ``store``'s rows."""
    return {
        table: build_tree(store.read_table_rows(table), table, leaf_size)
        for table in TABLES
    }


def diff_trees(
    source: ChecksumTree, other: ChecksumTree
) -> Tuple[List[Tuple[int, int]], int]:
    """Mismatching leaf row ranges between two trees, data-diff style.

    Starts at the roots and descends only into subtrees whose digests
    disagree, so ``k`` divergent rows cost ``O(k log n)`` comparisons
    instead of an O(n) row-by-row diff.  Returns ``(ranges, checked)``
    where ``ranges`` are ``[start, stop)`` row ranges of ``source`` and
    ``checked`` counts the node comparisons made (also added to the
    ``repro_verify_ranges_checked`` metric).

    Trees with different shapes (row count or leaf size) cannot be
    diffed range-by-range; the whole table is reported as one divergent
    range.
    """
    checked = 1
    if (
        source.n_rows != other.n_rows
        or source.leaf_size != other.leaf_size
        or source.n_leaves != other.n_leaves
    ):
        RANGES_CHECKED.inc(checked)
        RANGES_MISMATCHED.inc()
        return [(0, max(source.n_rows, other.n_rows))], checked
    if source.root == other.root:
        RANGES_CHECKED.inc(checked)
        return [], checked

    # descend level by level; ``suspects`` holds mismatching node
    # indices of the current level
    suspects = [0]
    for level in range(len(source.levels) - 2, -1, -1):
        next_suspects = []
        a_level, b_level = source.levels[level], other.levels[level]
        for parent in suspects:
            for child in (2 * parent, 2 * parent + 1):
                if child >= len(a_level):
                    continue
                checked += 1
                if a_level[child] != b_level[child]:
                    next_suspects.append(child)
        suspects = next_suspects
    ranges = [source.leaf_range(leaf) for leaf in suspects]
    RANGES_CHECKED.inc(checked)
    RANGES_MISMATCHED.inc(len(ranges))
    return ranges, checked


# ---------------------------------------------------------------------- #
# persistence through the scalar meta interface
# ---------------------------------------------------------------------- #


def persist_trees(store, trees: Dict[str, ChecksumTree]) -> None:
    """Write a tree set into ``store``'s meta table.

    CRC32 digests are 32-bit integers, exact in a float64, so the
    existing scalar meta interface carries the whole tree; keys are
    ``cks/<table>/...``.
    """
    for table, tree in trees.items():
        prefix = f"{_META_PREFIX}/{table}"
        store.set_meta(f"{prefix}/leaf_size", float(tree.leaf_size))
        store.set_meta(f"{prefix}/n_rows", float(tree.n_rows))
        store.set_meta(f"{prefix}/n_levels", float(len(tree.levels)))
        for li, level in enumerate(tree.levels):
            store.set_meta(f"{prefix}/len/{li}", float(len(level)))
            for ni, digest in enumerate(level):
                store.set_meta(f"{prefix}/{li}/{ni}", float(digest))


def load_trees(store) -> Optional[Dict[str, ChecksumTree]]:
    """Read back a persisted tree set; ``None`` when absent."""
    trees: Dict[str, ChecksumTree] = {}
    for table in TABLES:
        prefix = f"{_META_PREFIX}/{table}"
        leaf_size = store.get_meta(f"{prefix}/leaf_size")
        if leaf_size is None:
            return None
        n_rows = store.get_meta(f"{prefix}/n_rows")
        n_levels = store.get_meta(f"{prefix}/n_levels")
        if n_rows is None or n_levels is None:
            raise StorageError(f"truncated checksum tree for {table}")
        levels = []
        for li in range(int(n_levels)):
            length = store.get_meta(f"{prefix}/len/{li}")
            if length is None:
                raise StorageError(f"truncated checksum tree for {table}")
            level = []
            for ni in range(int(length)):
                digest = store.get_meta(f"{prefix}/{li}/{ni}")
                if digest is None:
                    raise StorageError(
                        f"truncated checksum tree for {table}"
                    )
                level.append(int(digest))
            levels.append(tuple(level))
        trees[table] = ChecksumTree(
            table=table,
            leaf_size=int(leaf_size),
            n_rows=int(n_rows),
            levels=tuple(levels),
        )
    return trees

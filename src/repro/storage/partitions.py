"""Time partitions: the storage tier of the live (streaming) index.

A live deployment organizes one logical index as an LSM-flavored run of
**partitions** ordered by time:

* one **hot** partition — an in-memory store receiving the features the
  online pipeline emits right now;
* any number of **sealed** partitions — immutable, finalized stores
  (SQLite / MiniDB files, or frozen memory stores in tests), each
  covering a half-open observation range ``[t_min, t_max)``.

The set of sealed partitions is described by a JSON
:class:`PartitionManifest` with a monotonically increasing
``generation``.  Every lifecycle transition — seal, compact, expire —
produces the *next* manifest and installs it atomically
(``os.replace``), so a crash at any point leaves either the old or the
new generation on disk, never a mix; partition files not referenced by
the surviving manifest are orphans and are swept on open.

Readers never lock out writers: a snapshot **pins** the partitions it
was opened over.  Retiring a partition (compaction folded it into a
bigger one, or TTL retention dropped it) only marks it; the store is
closed and its file deleted when the last pin is released, so a pinned
reader keeps a consistent view while the manifest moves on.

Pruning: each partition records the extent ``[feature_t_min,
feature_t_max]`` of the feature rows it holds (pairs may *start* up to a
window ``w`` before the partition's first observation, because Algorithm
1 pairs a new segment against up-to-``w`` of history).  A query
restricted to ``t_range`` can skip every partition whose feature extent
misses the range — see :func:`repro.engine.executor.execute_partitioned`.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field, replace
from types import SimpleNamespace
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidParameterError, StorageError
from ..obs.metrics import REGISTRY, ROWS_BUCKETS

__all__ = [
    "FEATURE_TABLES",
    "MANIFEST_NAME",
    "PartitionSpec",
    "Partition",
    "PartitionManifest",
    "copy_store_into",
]

#: The four physical feature tables every store holds.
FEATURE_TABLES = ("drop_points", "drop_lines", "jump_points", "jump_lines")

#: Manifest file name inside a partitioned index directory.
MANIFEST_NAME = "partitions.json"

MANIFEST_VERSION = 1

PARTITIONS_ACTIVE = REGISTRY.gauge(
    "repro_partitions_active",
    "Sealed partitions currently part of a live index (not retired)",
)
PARTITION_SEALS = REGISTRY.counter(
    "repro_partition_seals_total",
    "Hot partitions sealed into immutable partition stores",
)
COMPACTIONS = REGISTRY.counter(
    "repro_compactions_total",
    "Compaction merges of adjacent sealed partitions",
)
PARTITIONS_EXPIRED = REGISTRY.counter(
    "repro_partitions_expired_total",
    "Sealed partitions dropped by TTL retention",
)
PARTITION_FLUSH_ROWS = REGISTRY.histogram(
    "repro_partition_flush_rows",
    "Feature rows flushed per partition seal",
    buckets=ROWS_BUCKETS,
)


@dataclass(frozen=True)
class PartitionSpec:
    """Immutable description of one partition (what the manifest stores).

    ``t_min``/``t_max`` bound the *observation* timestamps whose closed
    segments landed in this partition (half-open ``[t_min, t_max)``
    against the next partition).  ``feature_t_min``/``feature_t_max``
    bound the ``[t_d, t_a]`` extents of the stored feature rows — the
    sound pruning interval, which reaches up to a window ``w`` earlier
    than ``t_min`` because pairs span partition boundaries.
    """

    partition_id: str
    t_min: float
    t_max: float
    feature_t_min: float
    feature_t_max: float
    rows: int
    n_segments: int
    file: Optional[str] = None  # None for in-memory partitions
    #: Observations covered by the manifest *up to and including* this
    #: partition — the per-partition twin of the manifest-level
    #: ``n_observations``, which lets a scrub rollback to any prefix
    #: restore a consistent count.  ``None`` on manifests written before
    #: this field existed.
    obs_covered: Optional[int] = None

    def overlaps_time(
        self, t_range: Optional[Tuple[float, float]]
    ) -> bool:
        """Whether a query restricted to ``t_range`` can match any
        feature row stored here.  ``None`` means unrestricted."""
        if t_range is None:
            return True
        lo, hi = t_range
        return not (self.feature_t_max < lo or self.feature_t_min > hi)

    def to_json(self) -> dict:
        return {
            "partition_id": self.partition_id,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "feature_t_min": self.feature_t_min,
            "feature_t_max": self.feature_t_max,
            "rows": self.rows,
            "n_segments": self.n_segments,
            "file": self.file,
            "obs_covered": self.obs_covered,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "PartitionSpec":
        return cls(
            partition_id=obj["partition_id"],
            t_min=float(obj["t_min"]),
            t_max=float(obj["t_max"]),
            feature_t_min=float(obj["feature_t_min"]),
            feature_t_max=float(obj["feature_t_max"]),
            rows=int(obj["rows"]),
            n_segments=int(obj["n_segments"]),
            file=obj.get("file"),
            obs_covered=(
                None if obj.get("obs_covered") is None
                else int(obj["obs_covered"])
            ),
        )


class Partition:
    """One sealed (or snapshot-frozen hot) partition: spec + open store.

    Pin-counted: readers :meth:`pin` the partitions of their snapshot;
    :meth:`retire` marks the partition dropped from the manifest, and the
    store is closed (and its backing file deleted) only when the last
    pin goes — a retired partition never disappears under a reader.
    """

    def __init__(
        self,
        spec: PartitionSpec,
        store,
        path: Optional[str] = None,
        counted: bool = False,
    ):
        self.spec = spec
        self.store = store
        self.path = path
        self._pins = 0
        self._retired = False
        self._closed = False
        self._lock = threading.Lock()
        # whether this partition is counted in the active-partitions
        # gauge (sealed members of a live index are; snapshot-private
        # hot clones are not)
        self._counted = counted
        if counted:
            PARTITIONS_ACTIVE.inc()
        # lazily-built read-side state (cost model / session); dropped on
        # retire so cached selectivity samples never outlive the rows
        # they were drawn from
        self._session = None

    @property
    def partition_id(self) -> str:
        return self.spec.partition_id

    def overlaps_time(self, t_range: Optional[Tuple[float, float]]) -> bool:
        return self.spec.overlaps_time(t_range)

    @property
    def read_lock(self) -> Optional[threading.Lock]:
        """A lock the executor must hold while reading, for backends
        whose concurrent reads are unsafe (MiniDB's buffer pool)."""
        if getattr(self.store, "THREAD_SAFE_READS", False):
            return None
        return self._lock

    def session(self):
        """A lazily-built, cached :class:`~repro.engine.session.QuerySession`.

        Sealed partitions are immutable, so the session's cost-model
        samples can be cached for the partition's whole life; they are
        invalidated and dropped when the partition is retired.
        """
        if self._session is None:
            from ..engine.session import QuerySession

            self._session = QuerySession(self.store)
        return self._session

    # -------------------------------------------------------------- #
    # pinning / lifecycle
    # -------------------------------------------------------------- #

    def pin(self) -> "Partition":
        with self._lock:
            if self._closed:
                raise StorageError(
                    f"partition {self.partition_id} is closed"
                )
            self._pins += 1
        return self

    def release(self) -> None:
        with self._lock:
            if self._pins <= 0:
                raise StorageError(
                    f"partition {self.partition_id} released more than pinned"
                )
            self._pins -= 1
            reap = self._retired and self._pins == 0
        if reap:
            self._dispose()

    def retire(self) -> None:
        """Drop from the live set; dispose once the last pin releases."""
        with self._lock:
            if self._retired:
                return
            self._retired = True
            if self._session is not None:
                # stale selectivity samples must not outlive the rows
                self._session.invalidate()
                self._session = None
            reap = self._pins == 0
        self._uncount()
        if reap:
            self._dispose()

    @property
    def retired(self) -> bool:
        return self._retired

    @property
    def pins(self) -> int:
        return self._pins

    def _dispose(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.store.close()
        finally:
            if self.path is not None:
                try:
                    os.remove(self.path)
                except OSError:
                    pass  # already gone (crash sweep, manual cleanup)

    def _uncount(self) -> None:
        if self._counted:
            self._counted = False
            PARTITIONS_ACTIVE.dec()

    def close(self) -> None:
        """Unconditional close (index shutdown); ignores pins."""
        self._retired = True
        self._uncount()
        if not self._closed:
            self._closed = True
            self.store.close()


@dataclass(frozen=True)
class PartitionManifest:
    """The generation-stamped catalog of one live index's partitions.

    Immutable: every mutation helper returns the *next* generation, and
    :meth:`save` installs it atomically.  ``watermark`` is the timestamp
    up to which data is durably sealed — the replay point a producer
    resumes from; ``n_observations`` is the observation count those
    sealed partitions cover.
    """

    epsilon: float
    window: float
    generation: int = 0
    watermark: Optional[float] = None
    n_observations: int = 0
    next_seq: int = 0
    finalized: bool = False
    partitions: Tuple[PartitionSpec, ...] = ()

    # -------------------------------------------------------------- #
    # transitions (each bumps the generation)
    # -------------------------------------------------------------- #

    def with_sealed(
        self, spec: PartitionSpec, watermark: float, n_observations: int
    ) -> "PartitionManifest":
        return replace(
            self,
            generation=self.generation + 1,
            watermark=watermark,
            n_observations=n_observations,
            next_seq=self.next_seq + 1,
            partitions=self.partitions + (spec,),
        )

    def with_replaced(
        self, old_ids: Sequence[str], new_spec: PartitionSpec
    ) -> "PartitionManifest":
        """Compaction: a contiguous run ``old_ids`` becomes ``new_spec``."""
        ids = list(old_ids)
        out: List[PartitionSpec] = []
        inserted = False
        for spec in self.partitions:
            if spec.partition_id in ids:
                if not inserted:
                    out.append(new_spec)
                    inserted = True
                continue
            out.append(spec)
        if not inserted:
            raise InvalidParameterError(
                f"none of {ids} present in the manifest"
            )
        return replace(
            self,
            generation=self.generation + 1,
            next_seq=self.next_seq + 1,
            partitions=tuple(out),
        )

    def with_dropped(self, ids: Sequence[str]) -> "PartitionManifest":
        """TTL retention: drop ``ids`` outright."""
        drop = set(ids)
        return replace(
            self,
            generation=self.generation + 1,
            partitions=tuple(
                s for s in self.partitions if s.partition_id not in drop
            ),
        )

    def with_finalized(self) -> "PartitionManifest":
        return replace(self, generation=self.generation + 1, finalized=True)

    def truncated_to(
        self,
        count: int,
        watermark: Optional[float],
        n_observations: int,
    ) -> "PartitionManifest":
        """Scrub rollback: keep only the first ``count`` partitions.

        A damaged sealed partition invalidates everything after it (the
        ingest order is global), so recovery rolls the catalog back to
        the longest intact prefix.  ``next_seq`` is *not* rewound —
        partition ids must never be reused, or a stale quarantined file
        could shadow a fresh one.
        """
        return replace(
            self,
            generation=self.generation + 1,
            watermark=watermark,
            n_observations=n_observations,
            finalized=False,
            partitions=self.partitions[:count],
        )

    # -------------------------------------------------------------- #
    # persistence
    # -------------------------------------------------------------- #

    def to_json(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "epsilon": self.epsilon,
            "window": self.window,
            "generation": self.generation,
            "watermark": self.watermark,
            "n_observations": self.n_observations,
            "next_seq": self.next_seq,
            "finalized": self.finalized,
            "partitions": [s.to_json() for s in self.partitions],
        }

    def save(self, directory: str, fs=None) -> str:
        """Atomically install this manifest as ``directory/partitions.json``.

        Write-to-temp + fsync + ``os.replace`` + directory fsync: a
        crash — or an ENOSPC anywhere along the way — leaves either the
        previous generation or this one on disk, never a torn file, and
        a *failed* install cleans its temp file so retries never find
        stale bytes.  The temp file is deliberately **left behind** on
        :class:`~repro.storage.faults.FaultInjected` (a simulated power
        cut gets no cleanup pass); the open-time sweep collects it.

        ``fs`` is the filesystem facade (``RealFS`` by default) through
        which the fault matrix counts every operation.
        """
        from .faults import FaultInjected, RealFS

        if fs is None:
            fs = RealFS()
        path = os.path.join(directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        try:
            payload = json.dumps(self.to_json(), indent=2).encode("utf-8")
            fh = fs.open(tmp, "wb")
            try:
                fh.write(payload)
                sync = getattr(fh, "fsync", None)
                if sync is not None:
                    sync()
                else:
                    os.fsync(fh.fileno())
            finally:
                fh.close()
            fs.replace(tmp, path)
        except BaseException as exc:
            if not isinstance(exc, FaultInjected):
                try:
                    os.remove(tmp)
                except OSError:
                    pass
            raise
        # the rename is installed; a directory-fsync failure is logged
        # by the facade's contract (best effort) and must not be
        # reported as a failed save — rolling back now would delete a
        # partition file a durable manifest already references
        try:
            fs.fsync_dir(directory)
        except OSError:  # pragma: no cover - facade swallows OSError
            pass
        return path

    @classmethod
    def load(cls, directory: str) -> "PartitionManifest":
        path = os.path.join(directory, MANIFEST_NAME)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                obj = json.load(fh)
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read partition manifest {path}: {exc}"
            ) from exc
        if obj.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"{path}: unsupported manifest version {obj.get('version')!r}"
            )
        return cls(
            epsilon=float(obj["epsilon"]),
            window=float(obj["window"]),
            generation=int(obj["generation"]),
            watermark=(
                None if obj.get("watermark") is None
                else float(obj["watermark"])
            ),
            n_observations=int(obj["n_observations"]),
            next_seq=int(obj["next_seq"]),
            finalized=bool(obj.get("finalized", False)),
            partitions=tuple(
                PartitionSpec.from_json(p) for p in obj["partitions"]
            ),
        )

    @classmethod
    def exists(cls, directory: str) -> bool:
        return os.path.isfile(os.path.join(directory, MANIFEST_NAME))

    def listed_files(self) -> List[str]:
        return [s.file for s in self.partitions if s.file is not None]


def copy_store_into(sources: Sequence, dest) -> int:
    """Copy every feature row and segment of ``sources`` (finalized
    stores, in time order) into ``dest``, preserving global insertion
    order, and finalize it.  Returns the number of feature rows copied.

    This is the seal *and* compaction write path: partitions are written
    by the one global extractor in time order, so partition-by-partition
    concatenation reproduces the exact storage order a single store
    would hold — which is why compacting any adjacent run is lossless
    (no feature is ever recomputed, only re-homed).
    """
    total = 0
    for src in sources:
        batch = SimpleNamespace(
            **{t: src.read_table_rows(t) for t in FEATURE_TABLES}
        )
        total += sum(
            getattr(batch, t).shape[0] for t in FEATURE_TABLES
        )
        dest.add_features_bulk(batch)
        dest.add_segments_bulk(src.load_segments())
    dest.finalize()
    return total

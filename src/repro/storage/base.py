"""Abstract interface every feature store implements."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Union

from ..core.corners import FeatureSet
from ..core.queries import DropQuery, JumpQuery
from ..types import SegmentPair

__all__ = ["FeatureStore", "StoreCounts", "Query"]

Query = Union[DropQuery, JumpQuery]

_POINT_WIDTH = 6
_LINE_WIDTH = 8


def rows_to_block(rows, width: int):
    """Adapt a scalar primitive's row sequence to an ``(m, width)``
    float64 block (the vectorized engine's column layout).  Zero-copy
    when ``rows`` already is such an array."""
    import numpy as np

    arr = np.asarray(rows, dtype=float)
    if arr.size == 0:
        return arr.reshape(0, width)
    return arr.reshape(-1, width)


def _account_block(block):
    """Attribute one adapted candidate block to the bound query context
    (no-op when none) — the default accounting for duck-typed stores
    whose own primitives predate resource accounting."""
    from ..obs import context as obs_context

    obs_context.account(rows_scanned=int(block.shape[0]),
                        bytes_decoded=int(block.nbytes))
    return block


@dataclass(frozen=True)
class StoreCounts:
    """Row counts per feature table."""

    drop_points: int
    drop_lines: int
    jump_points: int
    jump_lines: int

    @property
    def total(self) -> int:
        return (
            self.drop_points + self.drop_lines + self.jump_points + self.jump_lines
        )


class FeatureStore(abc.ABC):
    """Persistent home of the ε-shifted features of one SegDiff index.

    Lifecycle: ``add()`` feature sets while extraction runs, ``finalize()``
    once (builds indexes / freezes arrays), then ``search()`` any number of
    times.  ``add()`` after ``finalize()`` reopens the store for appends;
    backends must make that legal (it is how incremental-ingest
    experiments grow the index group by group).

    Search semantics live in :mod:`repro.engine`; a store contributes
    only the four **physical primitives** below (``scan_points``,
    ``probe_point_index``, ``scan_lines``, ``probe_line_index``), and
    :meth:`search` is a thin compatibility shim over the engine.
    """

    #: Cost-model key (see ``repro.engine.cost.BACKEND_COSTS``).
    BACKEND = "generic"
    #: Whether concurrent reads need no external serialization.
    THREAD_SAFE_READS = False

    @abc.abstractmethod
    def add(self, features: FeatureSet) -> None:
        """Persist one parallelogram's features."""

    def add_features_bulk(self, batch) -> None:
        """Persist a :class:`~repro.core.corners.FeatureBatch` of features.

        Backends override this with a genuinely bulk write (executemany,
        page-packed appends, array extends); the default falls back to
        row-at-a-time :meth:`add` so any store stays correct.  Durability
        semantics are those of :meth:`add`: nothing is committed until
        the next checkpoint/finalize.
        """
        for features in batch.iter_feature_sets():
            self.add(features)

    def add_segments_bulk(self, segments) -> None:
        """Record a run of data segments (see :meth:`add_segment`)."""
        for segment in segments:
            self.add_segment(segment)

    @abc.abstractmethod
    def finalize(self) -> None:
        """Flush buffers and build (or rebuild) secondary indexes."""

    def search(self, query: Query, mode: str = "index") -> List[SegmentPair]:
        """Run a drop/jump search; ``mode`` is ``"index"`` or ``"scan"``.

        Returns distinct segment pairs (the union of the point and line
        query results, Section 4.4).  Compatibility shim — new code
        should go through :class:`repro.engine.QuerySession`.
        """
        return self._engine_search(query, mode)

    def _engine_search(
        self, query: Query, mode: str, cache: str = "warm"
    ) -> List[SegmentPair]:
        """Delegate one search to the engine executor."""
        from ..engine.executor import execute
        from ..engine.plan import build_plan

        plan = build_plan(query, point_access=mode)
        return execute(plan, self, cache=cache).pairs

    # ------------------------------------------------------------------ #
    # physical primitives (the engine's narrow interface)
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def scan_points(
        self,
        kind: str,
        t_threshold: Optional[float] = None,
        v_threshold: Optional[float] = None,
        cache: str = "warm",
        guard=None,
    ):
        """Sequential pass over the ``kind`` point table.

        Returns an ``(m, 6)`` row array/sequence with columns
        ``dt, dv, t_d, t_c, t_b, t_a``.  The thresholds are *pushdown
        hints*: a backend may pre-filter with them when that is cheap,
        but must never drop a matching row (the executor re-applies the
        exact predicate).  ``None`` means "no pre-filtering" — the
        batched grid path relies on that to share one pass across
        queries.

        ``guard`` (a :class:`repro.engine.resilience.QueryGuard`, or
        ``None``) makes the pass *cooperative*: long row loops must call
        ``guard.tick()`` at least once per chunk (directly or via
        ``guard.wrap_iter``) so a query never runs more than one chunk
        past its deadline.  The executor only passes the kwarg when a
        guard is active, so legacy implementations without it keep
        working on the unguarded path.
        """

    @abc.abstractmethod
    def probe_point_index(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: Optional[float] = None,
        cache: str = "warm",
        guard=None,
    ):
        """Point candidates with ``dt <= t_threshold`` via the index.

        Same row layout, pushdown and ``guard`` contract as
        :meth:`scan_points`.  Raises
        :class:`~repro.errors.StorageError` when the index has not been
        built (call ``finalize()`` first).
        """

    @abc.abstractmethod
    def scan_lines(
        self,
        kind: str,
        t_threshold: Optional[float] = None,
        v_threshold: Optional[float] = None,
        cache: str = "warm",
        guard=None,
    ):
        """Sequential pass over the ``kind`` line table.

        Returns an ``(m, 8)`` row array/sequence with columns
        ``dt1, dv1, dt2, dv2, t_d, t_c, t_b, t_a``.  Same ``guard``
        contract as :meth:`scan_points`.
        """

    @abc.abstractmethod
    def probe_line_index(
        self,
        kind: str,
        t_threshold: float,
        v_threshold: Optional[float] = None,
        cache: str = "warm",
        guard=None,
    ):
        """Line candidates with ``dt1 <= t_threshold`` via the index."""

    def probe_point_grid(self, kind: str, t_threshold: float,
                         v_threshold: float):
        """Point candidates via a 2-D grid (optional access path)."""
        from ..errors import InvalidParameterError

        raise InvalidParameterError(
            f"the {type(self).__name__} backend has no grid access path"
        )

    # ------------------------------------------------------------------ #
    # batch columnar primitives (the engine's vectorized interface)
    # ------------------------------------------------------------------ #
    #
    # Each ``*_array`` primitive is the columnar twin of a scalar
    # primitive above: same table, same pushdown hints, same ``guard``
    # contract (tick at least once per chunk), but the result is a
    # guaranteed ``(m, width)`` float64 block instead of a row sequence.
    # The defaults adapt the scalar primitives, so every store — however
    # old — works on the vectorized engine path; the bundled backends
    # override them with genuinely columnar reads (zero-copy array
    # slices, chunked fetchmany into array blocks, mmap'd page decodes).

    def scan_points_array(self, kind: str,
                          t_threshold: Optional[float] = None,
                          v_threshold: Optional[float] = None,
                          cache: str = "warm", guard=None):
        """Columnar :meth:`scan_points`: an ``(m, 6)`` float64 block."""
        kw = {} if guard is None else {"guard": guard}
        return _account_block(rows_to_block(
            self.scan_points(kind, t_threshold=t_threshold,
                             v_threshold=v_threshold, cache=cache, **kw),
            _POINT_WIDTH,
        ))

    def probe_point_index_array(self, kind: str, t_threshold: float,
                                v_threshold: Optional[float] = None,
                                cache: str = "warm", guard=None):
        """Columnar :meth:`probe_point_index`: an ``(m, 6)`` block."""
        kw = {} if guard is None else {"guard": guard}
        return _account_block(rows_to_block(
            self.probe_point_index(kind, t_threshold,
                                   v_threshold=v_threshold, cache=cache,
                                   **kw),
            _POINT_WIDTH,
        ))

    def scan_lines_array(self, kind: str,
                         t_threshold: Optional[float] = None,
                         v_threshold: Optional[float] = None,
                         cache: str = "warm", guard=None):
        """Columnar :meth:`scan_lines`: an ``(m, 8)`` float64 block."""
        kw = {} if guard is None else {"guard": guard}
        return _account_block(rows_to_block(
            self.scan_lines(kind, t_threshold=t_threshold,
                            v_threshold=v_threshold, cache=cache, **kw),
            _LINE_WIDTH,
        ))

    def probe_line_index_array(self, kind: str, t_threshold: float,
                               v_threshold: Optional[float] = None,
                               cache: str = "warm", guard=None):
        """Columnar :meth:`probe_line_index`: an ``(m, 8)`` block."""
        kw = {} if guard is None else {"guard": guard}
        return _account_block(rows_to_block(
            self.probe_line_index(kind, t_threshold,
                                  v_threshold=v_threshold, cache=cache,
                                  **kw),
            _LINE_WIDTH,
        ))

    # ------------------------------------------------------------------ #
    # row-range access (anti-entropy interface)
    # ------------------------------------------------------------------ #

    def read_table_rows(self, table: str, start: int = 0,
                        stop: Optional[int] = None):
        """Rows ``[start, stop)`` of one feature table in **storage
        order** (insertion order), as a 2-D float array.

        This is the checksum/anti-entropy read path: two replicas built
        by the same deterministic pipeline must return bit-identical
        rows here, so checksum trees over this view compare equal iff
        the stores hold the same features.  The default routes through
        the scan primitives, which return insertion order on every
        bundled backend; a backend whose scan order differs must
        override.
        """
        from ..errors import InvalidParameterError

        kind, _, group = table.partition("_")
        if kind not in ("drop", "jump") or group not in ("points", "lines"):
            raise InvalidParameterError(f"unknown feature table {table!r}")
        import numpy as np

        scan = self.scan_points if group == "points" else self.scan_lines
        rows = np.asarray(scan(kind), dtype=float)
        return rows[start:stop]

    def replace_table_rows(self, table: str, start: int, rows) -> None:
        """Overwrite rows ``[start, start + len(rows))`` of ``table`` in
        storage order — the anti-entropy *repair* write path.

        Optional: backends that cannot address rows positionally leave
        the default, which raises :class:`~repro.errors.StorageError`;
        repair then falls back to a full rebuild from the peer.
        """
        from ..errors import StorageError

        raise StorageError(
            f"the {type(self).__name__} backend does not support in-place "
            "row replacement; rebuild from a peer instead"
        )

    @abc.abstractmethod
    def counts(self) -> StoreCounts:
        """Current row counts."""

    @abc.abstractmethod
    def add_segment(self, segment) -> None:
        """Record one data segment so a reopened index can rebuild its
        approximation (called by the index alongside feature adds)."""

    @abc.abstractmethod
    def load_segments(self) -> list:
        """All recorded data segments in ingestion order."""

    @abc.abstractmethod
    def set_meta(self, key: str, value: float) -> None:
        """Persist one scalar of build metadata (epsilon, window, ...)."""

    @abc.abstractmethod
    def get_meta(self, key: str):
        """Read back build metadata; ``None`` when absent."""

    @abc.abstractmethod
    def sample_points(self, kind: str, n: int):
        """A deterministic (dt, dv) row sample from the ``kind`` point
        table as an ``(m, 2)`` numpy array (``m <= n``), or ``None`` when
        the table is empty.  Used by the adaptive query planner."""

    @abc.abstractmethod
    def extreme_feature_dv(self, kind: str) -> "float | None":
        """The most extreme stored Δv for the search type: the minimum
        over drop features, the maximum over jump features; ``None`` when
        no features of that type exist.  Used by top-k search to bound
        its threshold sweep."""

    @abc.abstractmethod
    def feature_bytes(self) -> int:
        """Bytes used by the feature tables (excluding indexes)."""

    @abc.abstractmethod
    def index_bytes(self) -> int:
        """Bytes used by secondary indexes."""

    def disk_bytes(self) -> int:
        """Features plus indexes — the paper's 'disk size'."""
        return self.feature_bytes() + self.index_bytes()

    @abc.abstractmethod
    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    def __enter__(self) -> "FeatureStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Abstract interface every feature store implements."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Union

from ..core.corners import FeatureSet
from ..core.queries import DropQuery, JumpQuery
from ..types import SegmentPair

__all__ = ["FeatureStore", "StoreCounts", "Query"]

Query = Union[DropQuery, JumpQuery]


@dataclass(frozen=True)
class StoreCounts:
    """Row counts per feature table."""

    drop_points: int
    drop_lines: int
    jump_points: int
    jump_lines: int

    @property
    def total(self) -> int:
        return (
            self.drop_points + self.drop_lines + self.jump_points + self.jump_lines
        )


class FeatureStore(abc.ABC):
    """Persistent home of the ε-shifted features of one SegDiff index.

    Lifecycle: ``add()`` feature sets while extraction runs, ``finalize()``
    once (builds indexes / freezes arrays), then ``search()`` any number of
    times.  ``add()`` after ``finalize()`` reopens the store for appends;
    backends must make that legal (it is how incremental-ingest
    experiments grow the index group by group).
    """

    @abc.abstractmethod
    def add(self, features: FeatureSet) -> None:
        """Persist one parallelogram's features."""

    @abc.abstractmethod
    def finalize(self) -> None:
        """Flush buffers and build (or rebuild) secondary indexes."""

    @abc.abstractmethod
    def search(self, query: Query, mode: str = "index") -> List[SegmentPair]:
        """Run a drop/jump search; ``mode`` is ``"index"`` or ``"scan"``.

        Returns distinct segment pairs (the union of the point and line
        query results, Section 4.4).
        """

    @abc.abstractmethod
    def counts(self) -> StoreCounts:
        """Current row counts."""

    @abc.abstractmethod
    def add_segment(self, segment) -> None:
        """Record one data segment so a reopened index can rebuild its
        approximation (called by the index alongside feature adds)."""

    @abc.abstractmethod
    def load_segments(self) -> list:
        """All recorded data segments in ingestion order."""

    @abc.abstractmethod
    def set_meta(self, key: str, value: float) -> None:
        """Persist one scalar of build metadata (epsilon, window, ...)."""

    @abc.abstractmethod
    def get_meta(self, key: str):
        """Read back build metadata; ``None`` when absent."""

    @abc.abstractmethod
    def sample_points(self, kind: str, n: int):
        """A deterministic (dt, dv) row sample from the ``kind`` point
        table as an ``(m, 2)`` numpy array (``m <= n``), or ``None`` when
        the table is empty.  Used by the adaptive query planner."""

    @abc.abstractmethod
    def extreme_feature_dv(self, kind: str) -> "float | None":
        """The most extreme stored Δv for the search type: the minimum
        over drop features, the maximum over jump features; ``None`` when
        no features of that type exist.  Used by top-k search to bound
        its threshold sweep."""

    @abc.abstractmethod
    def feature_bytes(self) -> int:
        """Bytes used by the feature tables (excluding indexes)."""

    @abc.abstractmethod
    def index_bytes(self) -> int:
        """Bytes used by secondary indexes."""

    def disk_bytes(self) -> int:
        """Features plus indexes — the paper's 'disk size'."""
        return self.feature_bytes() + self.index_bytes()

    @abc.abstractmethod
    def close(self) -> None:
        """Release resources; the store must not be used afterwards."""

    def __enter__(self) -> "FeatureStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""The naive on-the-fly baseline (Section 1).

No precomputation: a search walks the raw series and compares every pair
of sampled observations within the time-span budget.  The paper dismisses
it as "several hours for a reasonably large data set"; it is included as
the correctness reference for the Exh results and as the zero-storage
point in the space/time trade-off benches.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError
from ..types import Event

__all__ = ["NaiveScan"]


class NaiveScan:
    """Query-time pairwise scan over a raw series."""

    def __init__(self, series: TimeSeries) -> None:
        self.series = series

    def search_drops(
        self, t_threshold: float, v_threshold: float
    ) -> List[Event]:
        """Sampled-pair events with ``0 < Δt <= T`` and ``Δv <= V``."""
        if not (v_threshold < 0):
            raise InvalidParameterError("drop search requires V < 0")
        return self._search(t_threshold, v_threshold, drop=True)

    def search_jumps(
        self, t_threshold: float, v_threshold: float
    ) -> List[Event]:
        """Sampled-pair events with ``0 < Δt <= T`` and ``Δv >= V``."""
        if not (v_threshold > 0):
            raise InvalidParameterError("jump search requires V > 0")
        return self._search(t_threshold, v_threshold, drop=False)

    def _search(self, t_thr: float, v_thr: float, drop: bool) -> List[Event]:
        if t_thr <= 0:
            raise InvalidParameterError("T must be positive")
        t = self.series.times
        v = self.series.values
        n = len(t)
        events: List[Event] = []
        # For each start index, the admissible end indexes form a
        # contiguous run (timestamps are sorted); vectorize per start.
        hi = np.searchsorted(t, t + t_thr, side="right")
        for i in range(n - 1):
            j_hi = int(hi[i])
            if j_hi <= i + 1:
                continue
            dv = v[i + 1 : j_hi] - v[i]
            mask = dv <= v_thr if drop else dv >= v_thr
            for off in np.nonzero(mask)[0]:
                j = i + 1 + int(off)
                events.append(Event(float(t[i]), float(t[j]), float(dv[off])))
        return events

"""The exhaustive baseline **Exh** (Section 1 / Section 5.2).

Exh stores one row ``(Δt, Δv, t'')`` for every ordered pair of *sampled*
observations whose time span is at most ``w`` — the paper's ``c1 = 3``
columns: time span, difference, and one absolute timestamp identifying
the event (the start is recoverable as ``t'' - Δt``).  A drop search is
the single range query ``Δt <= T AND Δv <= V``.

Two backends mirror the SegDiff stores: SQLite (with a ``(dt, dv)``
B-tree, forced-scan / forced-index plans, warm/cold cache) and an
in-memory numpy table.

Note the paper's caveat (Section 5.1): Exh sees only sampled pairs, so
events of the Model G signal that occur *between* samples can escape it —
SegDiff has no such blind spot.  The guarantee tests exercise exactly
that difference.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError, QueryError, StorageError
from ..types import Event

__all__ = ["ExhIndex"]

_BATCH = 20_000


class ExhIndex:
    """The exhaustive pairwise-difference index.

    Parameters
    ----------
    window:
        Largest supported query time span ``w`` (seconds).
    backend:
        ``"memory"`` (numpy) or ``"sqlite"``.
    path:
        SQLite file path; temporary when omitted.
    """

    def __init__(
        self,
        window: float,
        backend: str = "memory",
        path: Optional[str] = None,
    ) -> None:
        if window <= 0:
            raise InvalidParameterError("window must be positive")
        if backend not in ("memory", "sqlite"):
            raise InvalidParameterError(
                f"backend must be 'memory' or 'sqlite', got {backend!r}"
            )
        self.window = float(window)
        self.backend = backend
        self._recent: Deque[Tuple[float, float]] = deque()
        self._rows: List[Tuple[float, float, float]] = []
        self._frozen: Optional[np.ndarray] = None
        self._conn: Optional[sqlite3.Connection] = None
        self._indexed = False
        self._closed = False
        self._n_observations = 0
        self._last_t: Optional[float] = None
        if backend == "sqlite":
            if path is None:
                fd, path = tempfile.mkstemp(prefix="exh-", suffix=".sqlite")
                os.close(fd)
                os.unlink(path)
                self._owns_file = True
            else:
                self._owns_file = False
            self.path = path
            self._conn = self._connect()
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS pairs "
                "(dt REAL NOT NULL, dv REAL NOT NULL, t2 REAL NOT NULL)"
            )
            self._indexed = self._index_present()
            self._conn.commit()
        else:
            self.path = None
            self._owns_file = False

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path)
        conn.execute("PRAGMA journal_mode = OFF")
        conn.execute("PRAGMA synchronous = OFF")
        return conn

    def _index_present(self) -> bool:
        rows = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='index'"
        ).fetchall()
        return ("idx_pairs",) in rows

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def build(
        cls,
        series: TimeSeries,
        window: float,
        backend: str = "memory",
        path: Optional[str] = None,
    ) -> "ExhIndex":
        """Build and finalize over a whole series."""
        index = cls(window, backend=backend, path=path)
        index.ingest(series)
        index.finalize()
        return index

    def append(self, t: float, v: float) -> None:
        """Stream one observation; materializes its pairs within ``w``."""
        self._check_open()
        if self._last_t is not None and t <= self._last_t:
            raise InvalidParameterError(
                f"timestamps must be strictly increasing (got {t})"
            )
        self._last_t = t
        self._n_observations += 1
        while self._recent and t - self._recent[0][0] > self.window:
            self._recent.popleft()
        for t_prev, v_prev in self._recent:
            self._rows.append((t - t_prev, v - v_prev, t))
        self._recent.append((t, v))
        if self._conn is not None and len(self._rows) >= _BATCH:
            self._flush_sqlite()

    def ingest(self, series: TimeSeries) -> None:
        """Stream a whole series."""
        for t, v in zip(series.times, series.values):
            self.append(float(t), float(v))

    def finalize(self) -> None:
        """Flush rows and build the ``(dt, dv)`` B-tree (SQLite)."""
        self._check_open()
        if self._conn is not None:
            self._flush_sqlite()
            if not self._indexed:
                self._conn.execute(
                    "CREATE INDEX idx_pairs ON pairs(dt, dv)"
                )
                self._conn.execute("ANALYZE")
                self._conn.commit()
                self._indexed = True
        else:
            rows = self._rows
            if self._frozen is not None and self._frozen.size:
                merged = np.vstack(
                    [self._frozen, np.asarray(rows, dtype=float).reshape(-1, 3)]
                ) if rows else self._frozen
            else:
                merged = (
                    np.asarray(rows, dtype=float).reshape(-1, 3)
                    if rows
                    else np.empty((0, 3))
                )
            self._frozen = merged
            self._rows = []
            self._order = np.argsort(self._frozen[:, 0], kind="stable")

    def _flush_sqlite(self) -> None:
        if self._rows:
            self._conn.executemany(
                "INSERT INTO pairs VALUES (?, ?, ?)", self._rows
            )
            self._rows = []
        self._conn.commit()

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search_drops(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[Event]:
        """Sampled-pair events with ``Δt <= T`` and ``Δv <= V``."""
        if not (v_threshold < 0):
            raise InvalidParameterError("drop search requires V < 0")
        return self._search(t_threshold, v_threshold, "drop", mode, cache)

    def search_jumps(
        self,
        t_threshold: float,
        v_threshold: float,
        mode: str = "index",
        cache: str = "warm",
    ) -> List[Event]:
        """Sampled-pair events with ``Δt <= T`` and ``Δv >= V``."""
        if not (v_threshold > 0):
            raise InvalidParameterError("jump search requires V > 0")
        return self._search(t_threshold, v_threshold, "jump", mode, cache)

    def _search(
        self, t_thr: float, v_thr: float, kind: str, mode: str, cache: str
    ) -> List[Event]:
        self._check_open()
        if t_thr <= 0:
            raise InvalidParameterError("T must be positive")
        if t_thr > self.window:
            raise QueryError(
                f"T={t_thr} exceeds the Exh window w={self.window}"
            )
        if mode not in ("index", "scan"):
            raise InvalidParameterError(f"unknown mode {mode!r}")
        if self._conn is not None:
            return self._search_sqlite(t_thr, v_thr, kind, mode, cache)
        return self._search_memory(t_thr, v_thr, kind, mode)

    def _search_sqlite(
        self, t_thr: float, v_thr: float, kind: str, mode: str, cache: str
    ) -> List[Event]:
        if mode == "index" and not self._indexed:
            raise StorageError("index not built; call finalize() first")
        hint = "NOT INDEXED" if mode == "scan" else "INDEXED BY idx_pairs"
        op = "<=" if kind == "drop" else ">="
        sql = (
            f"SELECT dt, dv, t2 FROM pairs {hint} "
            f"WHERE dt <= :T AND dv {op} :V"
        )
        params = {"T": t_thr, "V": v_thr}
        if cache == "cold":
            conn = self._connect()
            try:
                conn.execute("PRAGMA cache_size = -64")
                rows = conn.execute(sql, params).fetchall()
            finally:
                conn.close()
        else:
            rows = self._conn.execute(sql, params).fetchall()
        return [Event(t2 - dt, t2, dv) for dt, dv, t2 in rows]

    def _search_memory(
        self, t_thr: float, v_thr: float, kind: str, mode: str
    ) -> List[Event]:
        if self._frozen is None:
            raise StorageError("index not finalized; call finalize() first")
        data = self._frozen
        if mode == "index":
            data = data[self._order]
            cut = int(np.searchsorted(data[:, 0], t_thr, side="right"))
            data = data[:cut]
            mask = data[:, 1] <= v_thr if kind == "drop" else data[:, 1] >= v_thr
        else:
            in_t = data[:, 0] <= t_thr
            in_v = data[:, 1] <= v_thr if kind == "drop" else data[:, 1] >= v_thr
            mask = in_t & in_v
        return [Event(t2 - dt, t2, dv) for dt, dv, t2 in data[mask]]

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    @property
    def n_observations(self) -> int:
        return self._n_observations

    def n_pairs(self) -> int:
        """Total materialized rows."""
        self._check_open()
        if self._conn is not None:
            self._flush_sqlite()
            return self._conn.execute("SELECT COUNT(*) FROM pairs").fetchone()[0]
        frozen = 0 if self._frozen is None else self._frozen.shape[0]
        return frozen + len(self._rows)

    def feature_bytes(self) -> int:
        """Bytes of the pairs table (excluding the index)."""
        self._check_open()
        if self._conn is not None:
            self._flush_sqlite()
            try:
                rows = self._conn.execute(
                    "SELECT SUM(pgsize) FROM dbstat WHERE name = 'pairs'"
                ).fetchone()
                if rows and rows[0]:
                    return int(rows[0])
            except sqlite3.Error:
                pass
            return self.n_pairs() * (3 * 8 + 10)
        if self._frozen is not None:
            return int(self._frozen.nbytes) + len(self._rows) * 24
        return len(self._rows) * 24

    def index_bytes(self) -> int:
        """Bytes of the ``(dt, dv)`` B-tree."""
        self._check_open()
        if self._conn is not None:
            if not self._indexed:
                return 0
            try:
                rows = self._conn.execute(
                    "SELECT SUM(pgsize) FROM dbstat WHERE name = 'idx_pairs'"
                ).fetchone()
                if rows and rows[0]:
                    return int(rows[0])
            except sqlite3.Error:
                pass
            return self.n_pairs() * (2 * 8 + 12)
        return 0 if self._frozen is None else int(self._order.nbytes)

    def disk_bytes(self) -> int:
        """Features plus index."""
        return self.feature_bytes() + self.index_bytes()

    def close(self) -> None:
        if self._closed:
            return
        if self._conn is not None:
            self._conn.close()
            if self._owns_file and self.path and os.path.exists(self.path):
                os.unlink(self.path)
        self._frozen = None
        self._rows = []
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError("index is closed")

    def __enter__(self) -> "ExhIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""Baselines the paper compares against.

* :class:`ExhIndex` — the exhaustive approach **Exh**: materialize
  ``(Δt, Δv)`` for every pair of sampled observations within the window
  ``w`` and answer searches with one range query.  Fast to query per row
  but enormous: its size is what SegDiff's compression is measured
  against in every experiment.
* :class:`NaiveScan` — the "naive approach" of the introduction: compute
  the differences on the fly at query time, storing nothing.
"""

from .exhaustive import ExhIndex
from .naive import NaiveScan

__all__ = ["ExhIndex", "NaiveScan"]

"""repro.obs — process-local observability: metrics, tracing, exporters,
and the slow-query log.

The package is stdlib-only and imported by every layer of the stack
(segmentation, extraction, storage, engine), so it must never import
from the rest of ``repro``.  See docs/observability.md for the metric
catalog and usage examples.

Quick tour::

    from repro import obs

    obs.REGISTRY.counter("repro_demo_total").inc()
    with obs.span("demo.step") as s:
        s.set_attribute("rows", 42)
    print(obs.render_table())
"""

from .metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    QUERY_LATENCY_BUCKETS,
    MetricSample,
    MetricsRegistry,
    REGISTRY,
    ROWS_BUCKETS,
    get_registry,
)
from .context import (  # noqa: F401
    QueryContext,
    ResourceAccounting,
    account,
    bind_scope,
    current_context,
    current_scope,
    new_context,
    use_context,
)
from .recorder import (  # noqa: F401
    CATEGORIES as RECORDER_CATEGORIES,
    EVENT_SCHEMA as RECORDER_EVENT_SCHEMA,
    FlightEvent,
    FlightRecorder,
    RECORDER,
    record,
)
from .metrics import enabled as metrics_enabled  # noqa: F401
from .metrics import set_enabled as set_metrics_enabled  # noqa: F401
from .tracing import (  # noqa: F401
    Span,
    TRACER,
    Tracer,
    clear_traces,
    current_span,
    enabled_ctx,
    iter_spans,
    recent_traces,
    render_span_tree,
    retain_trace,
    span,
)
from .tracing import enabled as tracing_enabled  # noqa: F401
from .tracing import set_enabled as set_tracing_enabled  # noqa: F401
from .export import (  # noqa: F401
    parse_prometheus,
    render_table,
    to_jsonl,
    to_prometheus,
    validate_jsonl,
    validate_schema,
    write_jsonl,
)
from .slowlog import (  # noqa: F401
    SLOW_QUERY_LOG,
    SlowQueryLog,
    SlowQueryRecord,
    default_threshold,
    set_default_threshold,
)

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "MetricSample", "MetricsRegistry",
    "REGISTRY", "LATENCY_BUCKETS", "QUERY_LATENCY_BUCKETS",
    "ROWS_BUCKETS", "get_registry",
    "metrics_enabled", "set_metrics_enabled",
    # query context / accounting
    "QueryContext", "ResourceAccounting", "account", "bind_scope",
    "current_context", "current_scope", "new_context", "use_context",
    # flight recorder
    "FlightEvent", "FlightRecorder", "RECORDER", "RECORDER_CATEGORIES",
    "RECORDER_EVENT_SCHEMA", "record",
    # tracing
    "Span", "Tracer", "TRACER", "span", "current_span", "recent_traces",
    "clear_traces", "retain_trace", "render_span_tree", "iter_spans",
    "enabled_ctx", "tracing_enabled", "set_tracing_enabled",
    # export
    "to_jsonl", "write_jsonl", "to_prometheus", "parse_prometheus",
    "render_table", "validate_jsonl", "validate_schema",
    # slow-query log
    "SlowQueryRecord", "SlowQueryLog", "SLOW_QUERY_LOG",
    "set_default_threshold", "default_threshold",
]

"""Slow-query log: a bounded record of queries that exceeded a latency
threshold, with the executed plan and per-operator actuals attached.

`QuerySession` feeds this after every search/explain when a threshold is
configured (per-session argument, or process-wide via
:func:`set_default_threshold` / ``REPRO_SLOW_QUERY_MS``).  Each hit also
emits a ``WARNING`` on the ``repro.engine`` logger and bumps
``repro_query_slow_total``, so a deployment can alert on the counter and
pull details from the ring buffer (``repro stats --slow``-style use, or
programmatic :func:`recent`).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "SlowQueryRecord",
    "SlowQueryLog",
    "SLOW_QUERY_LOG",
    "set_default_threshold",
    "default_threshold",
    "recent",
    "clear",
]

logger = logging.getLogger("repro.engine")


def _env_threshold() -> Optional[float]:
    raw = os.environ.get("REPRO_SLOW_QUERY_MS")
    if not raw:
        return None
    try:
        return float(raw) / 1000.0
    except ValueError:
        return None


_DEFAULT_THRESHOLD: Optional[float] = _env_threshold()


def set_default_threshold(seconds: Optional[float]) -> None:
    """Process-wide fallback threshold for sessions that don't pass one
    (None disables)."""
    global _DEFAULT_THRESHOLD
    _DEFAULT_THRESHOLD = seconds


def default_threshold() -> Optional[float]:
    return _DEFAULT_THRESHOLD


@dataclass
class SlowQueryRecord:
    """One over-threshold query, as captured by the session.

    The diagnostics fields (``query_id``, ``status``, the accounting
    snapshot and the shard/partition breakdowns) default empty so
    pre-diagnostics producers and consumers keep working unchanged.
    """

    api: str                      # "search" | "search_batch" | "explain"
    backend: str
    duration_s: float
    threshold_s: float
    plan: str                     # QueryPlan.describe()
    n_pairs: int
    wall_time: float = field(default_factory=time.time)
    operators: List[Dict[str, Any]] = field(default_factory=list)
    query_id: Optional[str] = None
    status: str = "complete"
    partitions_scanned: Optional[int] = None
    partitions_pruned: Optional[int] = None
    #: Per-scope accounting cells: the ``breakdown`` entries of the
    #: query's :class:`~repro.obs.context.ResourceAccounting` snapshot.
    shards: List[Dict[str, Any]] = field(default_factory=list)
    #: The accounting totals (rows scanned, bytes decoded, retries, ...).
    accounting: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "api": self.api,
            "backend": self.backend,
            "duration_ms": round(self.duration_s * 1e3, 3),
            "threshold_ms": round(self.threshold_s * 1e3, 3),
            "plan": self.plan,
            "n_pairs": self.n_pairs,
            "wall_time": self.wall_time,
            "operators": list(self.operators),
            "status": self.status,
        }
        if self.query_id is not None:
            out["query_id"] = self.query_id
        if self.partitions_scanned is not None:
            out["partitions_scanned"] = self.partitions_scanned
            out["partitions_pruned"] = self.partitions_pruned
        if self.shards:
            out["shards"] = list(self.shards)
        if self.accounting is not None:
            out["accounting"] = dict(self.accounting)
        return out


class SlowQueryLog:
    """Thread-safe bounded buffer of :class:`SlowQueryRecord`."""

    def __init__(self, maxlen: int = 128) -> None:
        self._records: Deque[SlowQueryRecord] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def add(self, record: SlowQueryRecord) -> None:
        with self._lock:
            self._records.append(record)
        logger.warning(
            "slow query: api=%s backend=%s duration=%.1fms "
            "threshold=%.1fms pairs=%d plan=%s",
            record.api, record.backend, record.duration_s * 1e3,
            record.threshold_s * 1e3, record.n_pairs, record.plan,
        )

    def recent(self, n: Optional[int] = None) -> List[SlowQueryRecord]:
        """Most recent records, oldest first (all when ``n`` is None)."""
        with self._lock:
            records = list(self._records)
        return records if n is None else records[-n:]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


#: Process-wide log all sessions append to.
SLOW_QUERY_LOG = SlowQueryLog()


def recent(n: Optional[int] = None) -> List[SlowQueryRecord]:
    return SLOW_QUERY_LOG.recent(n)


def clear() -> None:
    SLOW_QUERY_LOG.clear()

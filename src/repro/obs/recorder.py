"""Flight recorder: a bounded ring of recent operational events.

A postmortem needs more than the failing query's own trace — it needs
what the *process* was doing around it: partitions sealing, compactions
rewriting files, circuit breakers flipping, WAL replays on open, shard
replicas failing over, admission control shedding load, anti-entropy
repairing checksums.  The recorder keeps the most recent of these as
structured events in one process-wide, thread-safe ring; the engine
attaches the recent tail to failing/degraded
:class:`~repro.engine.resilience.QueryOutcome`\\ s, and the ``segdiff
debug`` CLI dumps it as schema-validated JSONL
(``benchmarks/recorder.schema.json``).

Recording one event is a timestamp, a dict, and a deque append under a
lock — cheap enough to stay always-on.  The ring is bounded
(``maxlen``), so memory never grows with uptime, and ``seq`` is a
process-monotonic sequence number so consumers can detect drops between
two tails.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = [
    "CATEGORIES",
    "EVENT_SCHEMA",
    "FlightEvent",
    "FlightRecorder",
    "RECORDER",
    "record",
    "tail",
    "clear",
]

#: Event categories the schema admits.
CATEGORIES = (
    "seal",
    "compaction",
    "expire",
    "breaker",
    "wal_replay",
    "failover",
    "shed",
    "checksum_repair",
    "timeout",
    "degraded",
    "scrub",
)

#: JSON Schema (the subset ``export.validate_schema`` checks) for one
#: dumped event — the in-code twin of ``benchmarks/recorder.schema.json``.
EVENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["ts", "seq", "category", "name", "attrs"],
    "additionalProperties": False,
    "properties": {
        "ts": {"type": "number", "minimum": 0},
        "seq": {"type": "integer", "minimum": 1},
        "category": {"type": "string", "enum": list(CATEGORIES)},
        "name": {"type": "string"},
        "attrs": {"type": "object"},
    },
}

_seq = itertools.count(1)


class FlightEvent:
    """One recorded operational event."""

    __slots__ = ("ts", "seq", "category", "name", "attrs")

    def __init__(self, category: str, name: str,
                 attrs: Dict[str, Any]) -> None:
        self.ts = time.time()
        self.seq = next(_seq)
        self.category = category
        self.name = name
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ts": self.ts,
            "seq": self.seq,
            "category": self.category,
            "name": self.name,
            "attrs": dict(self.attrs),
        }

    def render(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in sorted(self.attrs.items()))
        return (
            f"#{self.seq}  {self.category}:{self.name}"
            + (f"  [{inner}]" if inner else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlightEvent({self.render()})"


class FlightRecorder:
    """Bounded, thread-safe ring of :class:`FlightEvent`."""

    def __init__(self, maxlen: int = 256) -> None:
        self._events: Deque[FlightEvent] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def record(self, category: str, name: str, **attrs: Any) -> FlightEvent:
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown flight-recorder category {category!r}; "
                f"known: {CATEGORIES}"
            )
        # constructed under the lock so ``seq`` order and ring order
        # agree — a tail is always seq-sorted, with gaps only at drops
        with self._lock:
            event = FlightEvent(category, name, attrs)
            self._events.append(event)
        return event

    def tail(self, n: Optional[int] = None) -> List[FlightEvent]:
        """Most recent events, oldest first (all when ``n`` is None)."""
        with self._lock:
            events = list(self._events)
        return events if n is None else events[-n:]

    def tail_dicts(self, n: Optional[int] = None) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.tail(n)]

    def to_jsonl(self, n: Optional[int] = None) -> str:
        """The tail as JSON Lines (``recorder.schema.json`` rows)."""
        import json

        return "\n".join(
            json.dumps(d, sort_keys=True) for d in self.tail_dicts(n)
        )

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: The process-wide recorder every instrumented module feeds.
RECORDER = FlightRecorder()


def record(category: str, name: str, **attrs: Any) -> FlightEvent:
    """Record one event on the default recorder."""
    return RECORDER.record(category, name, **attrs)


def tail(n: Optional[int] = None) -> List[FlightEvent]:
    return RECORDER.tail(n)


def clear() -> None:
    RECORDER.clear()

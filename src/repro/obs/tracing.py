"""Span-based tracing: nested timing trees for build and query paths.

A :class:`Span` measures one named unit of work (``query.search``,
``op.point_range``) with wall-clock duration, free-form attributes, and
child spans.  ``span(...)`` context managers opened while another span is
active on the same thread nest under it; finished root spans land in a
bounded ring buffer (:func:`recent_traces`) for the CLI to render.

Tracing is **off by default** — unlike metrics it allocates per event —
and when off, ``span()`` returns a shared no-op whose enter/exit are two
attribute lookups.  Enable per-process with :func:`set_enabled` (the CLI
``--trace`` flag) or scoped with ``enabled_ctx()``.

The active-span stack is thread-local: traces from concurrent sessions
never interleave.  A worker thread with an empty stack but a bound
:class:`~repro.obs.context.QueryContext` parents its spans on the
context's hand-off span, so scatter-gather work joins the submitting
query's tree instead of orphaning per-thread fragments.  A bound
context with ``trace=True`` also enables span recording for just that
query while process-wide tracing stays off — the tail-based retention
path: the context owner calls :func:`retain_trace` only for traces
worth keeping (slow, degraded, failed, timed-out).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from . import context as _context

__all__ = [
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "current_span",
    "recent_traces",
    "clear_traces",
    "retain_trace",
    "set_enabled",
    "enabled",
    "render_span_tree",
]

_span_ids = itertools.count(1)


class Span:
    """One timed unit of work in a trace tree."""

    __slots__ = (
        "name", "span_id", "parent", "children", "attributes",
        "start", "end", "error",
    )

    def __init__(self, name: str, parent: Optional["Span"] = None) -> None:
        self.name = name
        self.span_id = next(_span_ids)
        self.parent = parent
        self.children: List[Span] = []
        self.attributes: Dict[str, Any] = {}
        self.start = 0.0
        self.end = 0.0
        self.error: Optional[str] = None
        if parent is not None:
            parent.children.append(self)

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly tree rooted at this span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "duration_s": self.duration,
            "attributes": dict(self.attributes),
            "error": self.error,
            "children": [c.to_dict() for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration * 1e3:.2f}ms)"


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    children: List[Span] = []
    attributes: Dict[str, Any] = {}
    duration = 0.0
    error = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager driving one live span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._span = Span(name, parent=tracer._current())

    def __enter__(self) -> Span:
        self._span.start = time.perf_counter()
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        s = self._span
        s.end = time.perf_counter()
        if exc is not None:
            s.error = f"{exc_type.__name__}: {exc}"
        self._tracer._pop(s)
        return False


class Tracer:
    """Thread-local span stacks plus a bounded buffer of finished roots."""

    def __init__(self, max_traces: int = 64) -> None:
        self._local = threading.local()
        self._traces: Deque[Span] = deque(maxlen=max_traces)
        self._traces_lock = threading.Lock()
        self._enabled = False

    # -- enable switch -------------------------------------------------- #

    def set_enabled(self, on: bool) -> None:
        self._enabled = bool(on)

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- span lifecycle ------------------------------------------------- #

    def span(self, name: str):
        """A context manager yielding the new :class:`Span` (or a no-op
        when tracing is off).

        Live when tracing is enabled process-wide **or** the thread has
        a bound query context with ``trace=True`` — the latter records
        lightweight per-query spans for tail-based retention without
        turning tracing on for the whole process.
        """
        if self._enabled:
            return _ActiveSpan(self, name)
        ctx = _context.current_context()
        if ctx is not None and ctx.trace:
            return _ActiveSpan(self, name)
        return _NULL_SPAN

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> Optional[Span]:
        stack = self._stack()
        if stack:
            return stack[-1]
        # empty stack on this thread: fall back to the bound context's
        # hand-off span, so scatter-pool worker spans parent onto the
        # submitting query's tree.  Span.__init__ appends the child via
        # ``parent.children.append`` — atomic under the GIL, so the
        # cross-thread link needs no extra lock.
        ctx = _context.current_context()
        if ctx is not None:
            return ctx.parent_span  # type: ignore[return-value]
        return None

    def _push(self, s: Span) -> None:
        self._stack().append(s)

    def _pop(self, s: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is s:
            stack.pop()
        elif s in stack:  # mismatched exits: drop everything above too
            del stack[stack.index(s):]
        if s.parent is None:
            if not self._enabled:
                # context-traced only: park the root on the context; the
                # owner retains it iff the outcome warrants (tail-based
                # retention) instead of flooding the ring with every
                # healthy query's trace.
                ctx = _context.current_context()
                if ctx is not None and ctx.trace:
                    ctx.trace_roots.append(s)
                    return
            with self._traces_lock:
                self._traces.append(s)

    def retain(self, root: Span) -> None:
        """Keep a finished root in the trace ring (tail retention)."""
        with self._traces_lock:
            self._traces.append(root)

    # -- finished traces ------------------------------------------------ #

    def recent_traces(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._traces_lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._traces_lock:
            self._traces.clear()
        self._local = threading.local()


#: Process-wide tracer used by all instrumented modules.
TRACER = Tracer()


def span(name: str):
    """``with span("query.search") as s: ...`` on the default tracer."""
    return TRACER.span(name)


def current_span() -> Optional[Span]:
    """The innermost open span on this thread (None when idle/off)."""
    return TRACER._current()


def recent_traces() -> List[Span]:
    return TRACER.recent_traces()


def clear_traces() -> None:
    TRACER.clear()


def retain_trace(root: Span) -> None:
    """Keep a context-recorded trace in the default tracer's ring."""
    TRACER.retain(root)


def set_enabled(on: bool) -> None:
    TRACER.set_enabled(on)


def enabled() -> bool:
    return TRACER.enabled


class enabled_ctx:
    """Temporarily enable (or disable) tracing::

        with enabled_ctx():
            index.search(...)
    """

    def __init__(self, on: bool = True) -> None:
        self._on = on
        self._prev = False

    def __enter__(self) -> None:
        self._prev = TRACER.enabled
        TRACER.set_enabled(self._on)

    def __exit__(self, *exc_info) -> None:
        TRACER.set_enabled(self._prev)


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{inner}]"


def render_span_tree(root: Span) -> str:
    """An indented, human-readable rendering of one trace::

        query.search  4.21ms  [backend=minidb]
          query.plan  0.08ms
          op.point_range  1.90ms  [rows_in=840, rows_out=17]
    """
    lines: List[str] = []

    def walk(s: Span, depth: int) -> None:
        err = f"  !{s.error}" if s.error else ""
        lines.append(
            f"{'  ' * depth}{s.name}  {s.duration * 1e3:.2f}ms"
            f"{_format_attrs(s.attributes)}{err}"
        )
        for child in s.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def iter_spans(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a finished trace."""
    yield root
    for child in root.children:
        yield from iter_spans(child)

"""Per-query diagnostic context: identity, propagation, accounting.

A :class:`QueryContext` is the unit of end-to-end query diagnostics: it
carries a process-unique query id, a reference to the submitting query's
parent span (so spans opened on *other* threads — the sharding scatter
pool — link back into one trace tree), and a
:class:`ResourceAccounting` that every layer below contributes to
(stores report rows scanned and bytes decoded, the executor reports
candidate-matrix shapes, the resilience layer reports retries and
failovers).

Propagation is **explicit**: thread-locals do not cross a
``ThreadPoolExecutor`` boundary, so whoever scatters work captures the
context with :func:`current_context` and re-binds it in the worker with
:func:`use_context` (adding per-thread scope such as the shard id).
Within one thread, :func:`bind_scope` narrows the scope further (the
partitioned executor binds each partition id around its per-partition
execution) so contributions land in the right
``(operator, shard, partition)`` breakdown cell.

The module is stdlib-only and imported by the stores, so — like the
rest of ``repro.obs`` — it must never import from the rest of
``repro``.  :func:`account` on a thread with no bound context is a
single ``getattr`` returning immediately; always-on accounting stays
inside the observability overhead budget.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "ResourceAccounting",
    "QueryContext",
    "current_context",
    "current_scope",
    "new_context",
    "use_context",
    "bind_scope",
    "account",
]

_query_ids = itertools.count(1)

#: Accounting fields that sum as plain integers.
_COUNTER_FIELDS = (
    "rows_scanned",
    "rows_fetched",
    "rows_matched",
    "pages_read",
    "bytes_decoded",
    "retries",
    "failovers",
    "partitions_scanned",
    "partitions_pruned",
)

#: Cap on remembered candidate-matrix shapes (bounds memory on huge
#: grids; the count keeps totalling past the cap).
_MAX_SHAPES = 64


class ResourceAccounting:
    """Thread-safe per-query resource totals with a scoped breakdown.

    Totals are plain integer sums of every contribution; the breakdown
    keys each contribution by its ``(operator, shard, partition)`` scope
    (``None`` for unscoped levels), so by construction **totals equal
    the sum of the per-scope parts** — the invariant the diagnostics
    test suite holds under random fault schedules.
    """

    __slots__ = ("_lock", "totals", "breakdown", "candidate_shapes",
                 "candidate_matrices")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.totals: Dict[str, int] = {f: 0 for f in _COUNTER_FIELDS}
        #: ``(operator, shard, partition) -> {field -> sum}``
        self.breakdown: Dict[
            Tuple[Optional[str], Optional[str], Optional[str]],
            Dict[str, int],
        ] = {}
        #: ``(rows, width)`` of candidate matrices the executor built.
        self.candidate_shapes: List[Tuple[int, int]] = []
        self.candidate_matrices: int = 0

    def add(
        self,
        operator: Optional[str] = None,
        shard: Optional[str] = None,
        partition: Optional[str] = None,
        candidate_shape: Optional[Tuple[int, int]] = None,
        **fields: int,
    ) -> None:
        """Contribute ``fields`` to the totals and to the scope cell."""
        with self._lock:
            if candidate_shape is not None:
                self.candidate_matrices += 1
                if len(self.candidate_shapes) < _MAX_SHAPES:
                    self.candidate_shapes.append(
                        (int(candidate_shape[0]), int(candidate_shape[1]))
                    )
            if not fields:
                return
            key = (operator, shard, partition)
            cell = self.breakdown.get(key)
            if cell is None:
                cell = self.breakdown[key] = {}
            totals = self.totals
            for name, value in fields.items():
                v = int(value)
                totals[name] = totals.get(name, 0) + v
                cell[name] = cell.get(name, 0) + v

    def merge(self, other: "ResourceAccounting") -> None:
        """Fold another query's accounting into this one (shard gather)."""
        with other._lock:
            cells = [(k, dict(v)) for k, v in other.breakdown.items()]
            shapes = list(other.candidate_shapes)
            matrices = other.candidate_matrices
        with self._lock:
            self.candidate_matrices += matrices
            room = _MAX_SHAPES - len(self.candidate_shapes)
            if room > 0:
                self.candidate_shapes.extend(shapes[:room])
            for key, fields in cells:
                cell = self.breakdown.setdefault(key, {})
                for name, v in fields.items():
                    self.totals[name] = self.totals.get(name, 0) + v
                    cell[name] = cell.get(name, 0) + v

    # -- views ---------------------------------------------------------- #

    def total(self, field: str) -> int:
        with self._lock:
            return self.totals.get(field, 0)

    def scoped_sum(self, field: str) -> int:
        """The breakdown-side sum of ``field`` (equals :meth:`total`)."""
        with self._lock:
            return sum(
                cell.get(field, 0) for cell in self.breakdown.values()
            )

    def scopes(self) -> List[Tuple[Optional[str], Optional[str],
                                   Optional[str]]]:
        with self._lock:
            return list(self.breakdown)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot: totals plus the scope breakdown."""
        with self._lock:
            return {
                "totals": {
                    k: v for k, v in self.totals.items() if v
                },
                "candidate_matrices": self.candidate_matrices,
                "candidate_shapes": [
                    list(s) for s in self.candidate_shapes
                ],
                "breakdown": [
                    {
                        "operator": op,
                        "shard": shard,
                        "partition": part,
                        **fields,
                    }
                    for (op, shard, part), fields
                    in sorted(
                        self.breakdown.items(),
                        key=lambda kv: tuple(x or "" for x in kv[0]),
                    )
                ],
            }

    def render(self) -> str:
        """Human-readable accounting table (the ``segdiff debug`` view)."""
        snap = self.to_dict()
        lines = ["resource accounting:"]
        for k in _COUNTER_FIELDS:
            v = snap["totals"].get(k, 0)
            if v:
                lines.append(f"  {k}: {v}")
        if snap["candidate_matrices"]:
            shapes = ", ".join(
                f"{r}x{c}" for r, c in snap["candidate_shapes"][:8]
            )
            lines.append(
                f"  candidate_matrices: {snap['candidate_matrices']}"
                f"  [{shapes}{', ...' if snap['candidate_matrices'] > 8 else ''}]"
            )
        for cell in snap["breakdown"]:
            scope = " ".join(
                f"{k}={cell[k]}" for k in ("operator", "shard", "partition")
                if cell.get(k) is not None
            )
            fields = " ".join(
                f"{k}={v}" for k, v in cell.items()
                if k not in ("operator", "shard", "partition")
            )
            lines.append(f"  [{scope or 'query'}]  {fields}")
        return "\n".join(lines)


class QueryContext:
    """Identity + diagnostics carried by one query end to end.

    ``parent_span`` is the submitting thread's active span at hand-off —
    the tracer's cross-thread fallback parent, so worker-thread spans
    join the submitter's tree instead of becoming orphan roots.
    ``trace`` enables lightweight span recording for this query even
    while process-wide tracing is off (tail-based retention: the owner
    decides at completion whether the trace is worth keeping).
    """

    __slots__ = ("query_id", "api", "accounting", "trace", "parent_span",
                 "trace_roots")

    def __init__(
        self,
        api: str = "search",
        trace: bool = True,
        parent_span: Optional[object] = None,
        query_id: Optional[str] = None,
    ) -> None:
        self.query_id = (
            query_id if query_id is not None else f"q{next(_query_ids)}"
        )
        self.api = api
        self.accounting = ResourceAccounting()
        self.trace = trace
        self.parent_span = parent_span
        #: Roots finished under this context while global tracing is off
        #: (tail-retention candidates; the context owner keeps or drops).
        self.trace_roots: List[object] = []

    def handoff(self, parent_span: Optional[object]) -> "QueryContext":
        """The context to bind in a worker thread: same identity and
        accounting, with the scatter span as the cross-thread parent."""
        child = QueryContext.__new__(QueryContext)
        child.query_id = self.query_id
        child.api = self.api
        child.accounting = self.accounting
        child.trace = self.trace
        child.parent_span = parent_span
        child.trace_roots = self.trace_roots
        return child


class _Binding:
    """One thread's active context plus its accounting scope."""

    __slots__ = ("ctx", "shard", "partition")

    def __init__(self, ctx: QueryContext, shard: Optional[str],
                 partition: Optional[str]) -> None:
        self.ctx = ctx
        self.shard = shard
        self.partition = partition


_local = threading.local()


def _binding() -> Optional[_Binding]:
    return getattr(_local, "binding", None)


def current_context() -> Optional[QueryContext]:
    """The context bound on this thread, if any."""
    b = _binding()
    return b.ctx if b is not None else None


def current_scope() -> Tuple[Optional[str], Optional[str]]:
    """This thread's ``(shard, partition)`` accounting scope."""
    b = _binding()
    return (b.shard, b.partition) if b is not None else (None, None)


def new_context(api: str = "search", trace: bool = True) -> QueryContext:
    return QueryContext(api=api, trace=trace)


class use_context:
    """Bind ``ctx`` (with optional scope) on this thread::

        with use_context(ctx, shard="s3"):
            ...  # account()/span() contributions attribute to s3

    Bindings nest; the previous binding is restored on exit.
    """

    __slots__ = ("_next", "_prev")

    def __init__(self, ctx: QueryContext, shard: Optional[str] = None,
                 partition: Optional[str] = None) -> None:
        self._next = _Binding(ctx, shard, partition)
        self._prev: Optional[_Binding] = None

    def __enter__(self) -> QueryContext:
        self._prev = _binding()
        _local.binding = self._next
        return self._next.ctx

    def __exit__(self, *exc_info) -> None:
        _local.binding = self._prev


class bind_scope:
    """Narrow the current binding's scope (no-op without a context)::

        with bind_scope(partition="p000003"):
            execute(...)
    """

    __slots__ = ("_shard", "_partition", "_prev")

    def __init__(self, shard: Optional[str] = None,
                 partition: Optional[str] = None) -> None:
        self._shard = shard
        self._partition = partition
        self._prev: Optional[_Binding] = None

    def __enter__(self) -> None:
        prev = _binding()
        self._prev = prev
        if prev is None:
            return
        _local.binding = _Binding(
            prev.ctx,
            self._shard if self._shard is not None else prev.shard,
            self._partition if self._partition is not None
            else prev.partition,
        )

    def __exit__(self, *exc_info) -> None:
        if self._prev is not None or _binding() is not None:
            _local.binding = self._prev


def account(operator: Optional[str] = None,
            candidate_shape: Optional[Tuple[int, int]] = None,
            **fields: int) -> None:
    """Contribute to the current query's accounting, under the thread's
    scope.  A no-op (one attribute lookup) when no context is bound."""
    b = _binding()
    if b is None:
        return
    b.ctx.accounting.add(
        operator=operator, shard=b.shard, partition=b.partition,
        candidate_shape=candidate_shape, **fields,
    )

"""Exporters for the metrics registry: JSON-lines, Prometheus text,
and a human-readable table.

All three consume the normalized :class:`~repro.obs.metrics.MetricSample`
list from ``registry.collect()``, so any registry (not just the global
one) can be exported.  ``parse_prometheus`` inverts ``to_prometheus`` far
enough for round-trip tests and scrape-style consumers; the JSONL format
is validated in CI against ``benchmarks/metrics.schema.json`` using the
dependency-free checker in :func:`validate_jsonl`.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from .metrics import MetricSample, MetricsRegistry, REGISTRY

__all__ = [
    "to_jsonl",
    "write_jsonl",
    "to_prometheus",
    "parse_prometheus",
    "render_table",
    "validate_jsonl",
    "validate_schema",
]


def _sample_to_json(s: MetricSample) -> Dict[str, Any]:
    rec: Dict[str, Any] = {
        "name": s.name,
        "type": s.type,
        "labels": s.labels_dict(),
    }
    if s.type == "histogram":
        rec["sum"] = s.sum
        rec["count"] = s.count
        rec["buckets"] = [
            {"le": ("+Inf" if math.isinf(le) else le), "count": n}
            for le, n in s.buckets
        ]
    else:
        rec["value"] = s.value
    return rec


def to_jsonl(registry: Optional[MetricsRegistry] = None) -> str:
    """One JSON object per line, one line per series."""
    registry = registry or REGISTRY
    return "\n".join(
        json.dumps(_sample_to_json(s), sort_keys=True)
        for s in registry.collect()
    )


def write_jsonl(path: str,
                registry: Optional[MetricsRegistry] = None) -> int:
    """Write the registry to ``path``; returns the number of series."""
    text = to_jsonl(registry)
    with open(path, "w") as fh:
        if text:
            fh.write(text)
            fh.write("\n")
    return 0 if not text else text.count("\n") + 1


# ---------------------------------------------------------------------- #
# Prometheus text exposition format
# ---------------------------------------------------------------------- #


def _prom_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_float(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition (``# HELP``/``# TYPE`` + samples)."""
    registry = registry or REGISTRY
    lines: List[str] = []
    seen_header = set()
    for s in registry.collect():
        if s.name not in seen_header:
            seen_header.add(s.name)
            if s.help:
                lines.append(f"# HELP {s.name} {s.help}")
            lines.append(f"# TYPE {s.name} {s.type}")
        labels = s.labels_dict()
        if s.type == "histogram":
            for le, n in s.buckets:
                le_label = 'le="%s"' % _prom_float(le)
                lines.append(
                    f"{s.name}_bucket{_prom_labels(labels, le_label)} {n}"
                )
            lines.append(
                f"{s.name}_sum{_prom_labels(labels)} {_prom_float(s.sum)}"
            )
            lines.append(
                f"{s.name}_count{_prom_labels(labels)} {s.count}"
            )
        else:
            lines.append(
                f"{s.name}{_prom_labels(labels)} {_prom_float(s.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for part in _split_label_pairs(text):
        k, _, v = part.partition("=")
        out[k] = v.strip('"')
    return out


def _split_label_pairs(text: str) -> List[str]:
    parts, depth, cur = [], False, []
    for ch in text:
        if ch == '"':
            depth = not depth
            cur.append(ch)
        elif ch == "," and not depth:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        parts.append("".join(cur))
    return parts


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse exposition text to ``{metric_line_name: {labels_repr: value}}``.

    Good enough to invert :func:`to_prometheus` for round-trip tests:
    histogram ``_bucket``/``_sum``/``_count`` lines appear under their
    suffixed names, like a real scrape.
    """
    out: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = name_part, {}
        label_key = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        value = float(value_part) if value_part not in (
            "+Inf", "-Inf"
        ) else math.inf * (1 if value_part == "+Inf" else -1)
        out.setdefault(name, {})[label_key] = value
    return out


# ---------------------------------------------------------------------- #
# human-readable table
# ---------------------------------------------------------------------- #


def render_table(registry: Optional[MetricsRegistry] = None,
                 prefix: str = "") -> str:
    """A fixed-width table of every series, for ``repro stats``.

    Histograms render as ``count / mean``; pass ``prefix`` to filter by
    metric-name prefix.
    """
    registry = registry or REGISTRY
    rows: List[tuple] = []
    for s in registry.collect():
        if prefix and not s.name.startswith(prefix):
            continue
        labels = ",".join(f"{k}={v}" for k, v in s.labels)
        if s.type == "histogram":
            mean = s.sum / s.count if s.count else 0.0
            value = f"n={s.count} mean={mean:.6g}"
        else:
            value = _prom_float(s.value)
        rows.append((s.name, s.type, labels, value))
    if not rows:
        return "(no metrics recorded)"
    titles = ("metric", "type", "labels", "value")
    widths = [
        max(len(titles[i]), max(len(str(r[i])) for r in rows))
        for i in range(3)
    ]
    lines = [
        "  ".join(list(t.ljust(w) for t, w in zip(titles, widths))
                  + [titles[3]]),
        "  ".join(["-" * w for w in widths] + ["-" * len(titles[3])]),
    ]
    for name, typ, labels, value in rows:
        lines.append(
            f"{name.ljust(widths[0])}  {typ.ljust(widths[1])}  "
            f"{labels.ljust(widths[2])}  {value}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# dependency-free JSON-schema-subset validation (CI metrics.jsonl check)
# ---------------------------------------------------------------------- #


def validate_schema(instance: Any, schema: Dict[str, Any],
                    path: str = "$") -> None:
    """Validate ``instance`` against the subset of JSON Schema the
    checked-in metric schema uses: ``type``, ``required``,
    ``properties``, ``additionalProperties`` (bool), ``items``,
    ``enum``, ``minimum``.  Raises ``ValueError`` with a JSON-path on
    the first violation.  (Deliberately self-contained: the dev extra
    does not ship ``jsonschema``.)
    """
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(instance, t) for t in types):
            raise ValueError(
                f"{path}: expected type {stype}, got "
                f"{type(instance).__name__}"
            )
    if "enum" in schema and instance not in schema["enum"]:
        raise ValueError(
            f"{path}: {instance!r} not in enum {schema['enum']}"
        )
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool):
        if instance < schema["minimum"]:
            raise ValueError(
                f"{path}: {instance} below minimum {schema['minimum']}"
            )
    if isinstance(instance, dict):
        for req in schema.get("required", ()):
            if req not in instance:
                raise ValueError(f"{path}: missing required key {req!r}")
        props = schema.get("properties", {})
        for key, value in instance.items():
            if key in props:
                validate_schema(value, props[key], f"{path}.{key}")
            elif schema.get("additionalProperties") is False:
                raise ValueError(f"{path}: unexpected key {key!r}")
    if isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            validate_schema(item, schema["items"], f"{path}[{i}]")


def _type_ok(instance: Any, t: str) -> bool:
    if t == "object":
        return isinstance(instance, dict)
    if t == "array":
        return isinstance(instance, list)
    if t == "string":
        return isinstance(instance, str)
    if t == "number":
        return isinstance(instance, (int, float)) \
            and not isinstance(instance, bool)
    if t == "integer":
        return isinstance(instance, int) and not isinstance(instance, bool)
    if t == "boolean":
        return isinstance(instance, bool)
    if t == "null":
        return instance is None
    return False


def validate_jsonl(lines: Iterable[str], schema: Dict[str, Any]) -> int:
    """Validate each non-empty JSONL line against ``schema``; returns
    the number of validated records."""
    n = 0
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {i + 1}: invalid JSON: {exc}") from exc
        validate_schema(record, schema, path=f"line {i + 1}")
        n += 1
    return n

"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is the single always-on telemetry substrate of the system
(docs/observability.md).  Design constraints, in order:

1. **Cheap enough to be always-on.**  An ``inc()`` is one enabled-flag
   check plus one int bump under a per-metric lock — well under the cost
   of the work it measures.  Instrumented modules fetch their metric
   handles once (module scope or ``__init__``), never per event.
2. **Correct under threads.**  Every mutation and every read of a
   metric's state happens under that metric's lock, so concurrent
   ``inc()`` calls never lose updates and :meth:`MetricsRegistry.snapshot`
   observes each metric atomically.
3. **Stable handles.**  Registration is idempotent — asking for the same
   ``(name, labels)`` returns the same object — and :meth:`reset` zeroes
   metrics *in place* instead of discarding them, so handles cached at
   import time stay live for the life of the process.

Metrics may carry a small, fixed set of labels (``backend="sqlite"``);
each distinct label set is its own time series, as in Prometheus.
Global on/off: :func:`set_enabled` (or ``REPRO_METRICS=0`` in the
environment).  Metrics registered ``always_on=True`` ignore the switch —
used where counters double as functional state (the MiniDB pager stats
that EXPLAIN and the page-cost experiment read).
"""

from __future__ import annotations

import bisect
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "REGISTRY",
    "LATENCY_BUCKETS",
    "QUERY_LATENCY_BUCKETS",
    "ROWS_BUCKETS",
    "get_registry",
    "set_enabled",
    "enabled",
]

#: Default latency buckets (seconds): microseconds to tens of seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: ``repro_query_seconds`` buckets, re-tuned after the vectorized hot
#: path (BENCH_query.json): most single queries now land between ~10 µs
#: (memory-store probes) and ~15 ms (large-series loop queries), so the
#: old 100 µs first edge collapsed p50/p99 into one bucket.  Edges run
#: 10 µs → 1 s with double resolution below 1 ms; batch grids and cold
#: caches still land in the coarse upper decades.
QUERY_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 5.0,
)
#: Default row-count buckets: decades from 1 to 1M.
ROWS_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)

_ENABLED = os.environ.get("REPRO_METRICS", "1") != "0"


def set_enabled(on: bool) -> None:
    """Globally enable/disable metric recording (always-on metrics keep
    counting).  Used by the overhead benchmark's off/on comparison."""
    global _ENABLED
    _ENABLED = bool(on)


def enabled() -> bool:
    return _ENABLED


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class MetricSample:
    """One normalized time series, as exporters consume it."""

    name: str
    type: str  # "counter" | "gauge" | "histogram"
    labels: Tuple[Tuple[str, str], ...]
    help: str = ""
    value: Optional[float] = None  # counters and gauges
    # histograms only: cumulative (le, count) pairs, +Inf last
    buckets: Tuple[Tuple[float, int], ...] = ()
    sum: float = 0.0
    count: int = 0

    def labels_dict(self) -> Dict[str, str]:
        return dict(self.labels)


class _Metric:
    """Shared identity + lock for every metric kind."""

    TYPE = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        always_on: bool = False,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = _freeze_labels(labels)
        self._always_on = always_on
        self._lock = threading.Lock()

    def _recording(self) -> bool:
        return _ENABLED or self._always_on

    def sample(self) -> MetricSample:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    TYPE = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if not self._recording():
            return
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def sample(self) -> MetricSample:
        return MetricSample(
            self.name, self.TYPE, self.labels, self.help, float(self.value)
        )


class Gauge(_Metric):
    """A value that can go up and down (open handles, queue depths)."""

    TYPE = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._recording():
            return
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        if not self._recording():
            return
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def sample(self) -> MetricSample:
        return MetricSample(
            self.name, self.TYPE, self.labels, self.help, self.value
        )


class _Timer:
    """Context manager observing elapsed seconds into a histogram."""

    __slots__ = ("_hist", "_t0")

    def __init__(self, hist: "Histogram") -> None:
        self._hist = hist
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter() if self._hist._recording() else 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        if self._t0:
            self._hist.observe(time.perf_counter() - self._t0)


class Histogram(_Metric):
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``buckets`` are inclusive upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the overflow.  ``observe`` is one
    bisect plus three bumps under the metric lock.
    """

    TYPE = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        always_on: bool = False,
    ) -> None:
        super().__init__(name, help, labels, always_on)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram buckets must be strictly increasing: {bounds}"
            )
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not self._recording():
            return
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def time(self) -> _Timer:
        """``with hist.time(): ...`` — observe the block's wall time."""
        return _Timer(self)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def per_bucket_counts(self) -> List[int]:
        """Non-cumulative per-bucket counts (the +Inf slot last)."""
        with self._lock:
            return list(self._counts)

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0

    def sample(self) -> MetricSample:
        with self._lock:
            counts = list(self._counts)
            total, count = self._sum, self._count
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, counts):
            running += n
            cumulative.append((bound, running))
        cumulative.append((float("inf"), running + counts[-1]))
        return MetricSample(
            self.name,
            self.TYPE,
            self.labels,
            self.help,
            value=None,
            buckets=tuple(cumulative),
            sum=total,
            count=count,
        )


@dataclass
class _Family:
    """All series registered under one metric name."""

    type: str
    help: str
    series: Dict[Tuple[Tuple[str, str], ...], _Metric] = field(
        default_factory=dict
    )


class MetricsRegistry:
    """Process-local registry of named metrics.

    Registration is idempotent per ``(name, labels)``; a name maps to
    exactly one metric type (re-registering with a different type
    raises).  :meth:`snapshot` and :meth:`collect` read each metric
    atomically; :meth:`reset` zeroes all metrics in place so cached
    handles stay live.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def _register(self, cls, name: str, help: str,
                  labels: Optional[Mapping[str, str]], **kwargs) -> _Metric:
        key = _freeze_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(type=cls.TYPE, help=help)
                self._families[name] = family
            elif family.type != cls.TYPE:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.type}, not {cls.TYPE}"
                )
            metric = family.series.get(key)
            if metric is None:
                metric = cls(name, help or family.help, labels, **kwargs)
                family.series[key] = metric
                if help and not family.help:
                    family.help = help
            return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Mapping[str, str]] = None,
                always_on: bool = False) -> Counter:
        return self._register(
            Counter, name, help, labels, always_on=always_on
        )

    def gauge(self, name: str, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Iterable[float] = LATENCY_BUCKETS,
                  always_on: bool = False) -> Histogram:
        return self._register(
            Histogram, name, help, labels, buckets=buckets,
            always_on=always_on,
        )

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def collect(self) -> List[MetricSample]:
        """Every registered series as a normalized sample, sorted by
        ``(name, labels)`` — the exporters' input."""
        with self._lock:
            metrics = [
                m
                for name in sorted(self._families)
                for _k, m in sorted(self._families[name].series.items())
            ]
        return [m.sample() for m in metrics]

    def snapshot(self) -> Dict[str, float]:
        """A flat ``name{labels} -> value`` map (histograms contribute
        ``_count`` and ``_sum`` entries).  Each metric is read atomically
        under its own lock."""
        out: Dict[str, float] = {}
        for s in self.collect():
            key = s.name + _labels_suffix(s.labels)
            if s.type == "histogram":
                out[key + "_count"] = float(s.count)
                out[key + "_sum"] = float(s.sum)
            else:
                out[key] = float(s.value)
        return out

    def get(self, name: str,
            labels: Optional[Mapping[str, str]] = None) -> Optional[_Metric]:
        """The registered metric, or ``None`` (never creates)."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.series.get(_freeze_labels(labels))

    def reset(self) -> None:
        """Zero every metric *in place* (handles stay valid)."""
        with self._lock:
            metrics = [
                m for f in self._families.values() for m in f.series.values()
            ]
        for m in metrics:
            m._reset()


def _labels_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


#: The process-wide default registry every instrumented module uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY

"""Core value types shared across the library.

The vocabulary follows the paper:

* an :class:`Observation` is one sampled ``(t, v)`` reading;
* a :class:`DataSegment` is one piece of the piecewise linear approximation
  produced by segmentation (Section 4.1), running from its *start*
  observation to its *end* observation;
* an :class:`Event` is a pair of time stamps ``(t', t'')`` with the derived
  feature ``(dt, dv) = (t'' - t', v'' - v')`` (Section 2);
* a :class:`SegmentPair` is the unit SegDiff returns from a search — the
  tuple ``((t_D, t_C), (t_B, t_A))`` of Definition 3, i.e. the boundaries of
  the earlier segment ``CD`` and the later segment ``AB``.

All timestamps are seconds on an arbitrary epoch, stored as floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .errors import InvalidSegmentError

__all__ = [
    "Observation",
    "DataSegment",
    "Event",
    "SegmentPair",
]


@dataclass(frozen=True)
class Observation:
    """One sampled reading: a timestamp ``t`` and a value ``v``."""

    t: float
    v: float

    def __iter__(self):
        return iter((self.t, self.v))


@dataclass(frozen=True)
class DataSegment:
    """One segment of the piecewise linear approximation.

    ``t_start < t_end`` is required; values are the approximation's values
    at the two boundary timestamps (for the interpolation-based segmenter
    these coincide with the original sampled values).
    """

    t_start: float
    v_start: float
    t_end: float
    v_end: float

    def __post_init__(self) -> None:
        if not (self.t_end > self.t_start):
            raise InvalidSegmentError(
                f"segment must have positive duration, got "
                f"[{self.t_start}, {self.t_end}]"
            )
        for name in ("t_start", "v_start", "t_end", "v_end"):
            if not math.isfinite(getattr(self, name)):
                raise InvalidSegmentError(f"segment field {name} is not finite")

    @property
    def duration(self) -> float:
        """Time span covered by the segment."""
        return self.t_end - self.t_start

    @property
    def rise(self) -> float:
        """Total value change over the segment (may be negative)."""
        return self.v_end - self.v_start

    @property
    def slope(self) -> float:
        """Slope ``k`` of the segment."""
        return self.rise / self.duration

    def value_at(self, t: float) -> float:
        """Value of the segment's line at time ``t``.

        ``t`` may lie outside ``[t_start, t_end]``; the line is extended.
        """
        return self.v_start + self.slope * (t - self.t_start)

    def contains_time(self, t: float) -> bool:
        """Whether ``t`` falls inside the segment's time extent."""
        return self.t_start <= t <= self.t_end

    def truncated_to_start(self, t_new_start: float) -> "DataSegment":
        """Return a copy starting at ``t_new_start`` (Algorithm 1, line 4).

        The new start value is the segment's own line evaluated at the new
        start time, so the truncated segment stays on the approximation.
        """
        if t_new_start <= self.t_start:
            return self
        if t_new_start >= self.t_end:
            raise InvalidSegmentError(
                f"cannot truncate segment [{self.t_start}, {self.t_end}] "
                f"to start at {t_new_start}"
            )
        return DataSegment(
            t_new_start, self.value_at(t_new_start), self.t_end, self.v_end
        )


@dataclass(frozen=True)
class Event:
    """A pair of time stamps and its feature, per the problem statement.

    ``t_first <= t_second``; ``dv`` is the value at ``t_second`` minus the
    value at ``t_first`` so a drop has ``dv < 0``.
    """

    t_first: float
    t_second: float
    dv: float

    @property
    def dt(self) -> float:
        """Time span ``Δt = t'' - t'`` of the event."""
        return self.t_second - self.t_first

    def is_drop(self, v_threshold: float, t_threshold: float) -> bool:
        """Whether this event satisfies the drop-search constraints."""
        return 0.0 < self.dt <= t_threshold and self.dv <= v_threshold

    def is_jump(self, v_threshold: float, t_threshold: float) -> bool:
        """Whether this event satisfies the jump-search constraints."""
        return 0.0 < self.dt <= t_threshold and self.dv >= v_threshold


@dataclass(frozen=True)
class SegmentPair:
    """The result unit of a SegDiff search (Definition 3).

    The drop (or jump) *starts* somewhere in ``[t_d, t_c]`` — the extent of
    the earlier segment ``CD`` — and *ends* somewhere in ``[t_b, t_a]`` —
    the extent of the later segment ``AB``.  A degenerate pair with
    ``(t_d, t_c) == (t_b, t_a)`` reports an event inside a single segment.
    """

    t_d: float
    t_c: float
    t_b: float
    t_a: float

    def __post_init__(self) -> None:
        if self.t_d > self.t_c or self.t_b > self.t_a:
            raise InvalidSegmentError(
                f"segment pair boundaries out of order: {self!r}"
            )

    @property
    def start_period(self) -> tuple:
        """``(t_D, t_C)`` — where the event may start."""
        return (self.t_d, self.t_c)

    @property
    def end_period(self) -> tuple:
        """``(t_B, t_A)`` — where the event may end."""
        return (self.t_b, self.t_a)

    @property
    def is_self_pair(self) -> bool:
        """Whether both periods refer to the same data segment."""
        return self.t_d == self.t_b and self.t_c == self.t_a

    def as_tuple(self) -> tuple:
        """The 4-tuple ``(t_d, t_c, t_b, t_a)``."""
        return (self.t_d, self.t_c, self.t_b, self.t_a)

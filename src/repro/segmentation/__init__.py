"""Piecewise-linear segmentation substrate (Section 4.1 of the paper).

The paper uses the generic *online sliding window* algorithm of Keogh et
al. (ICDM 2001) with linear interpolation and maximum error ``epsilon/2``.
:class:`SlidingWindowSegmenter` implements it with an O(1)-per-point slope
funnel.  Batch alternatives (:class:`BottomUpSegmenter`,
:class:`SWABSegmenter`) are provided for the ablation study.
"""

from .base import Segmenter, segment_series
from .sliding_window import SlidingWindowSegmenter
from .bottom_up import BottomUpSegmenter
from .swab import SWABSegmenter
from .metrics import (
    compression_rate,
    max_abs_error,
    mean_abs_error,
    verify_tolerance,
)

__all__ = [
    "Segmenter",
    "segment_series",
    "SlidingWindowSegmenter",
    "BottomUpSegmenter",
    "SWABSegmenter",
    "compression_rate",
    "max_abs_error",
    "mean_abs_error",
    "verify_tolerance",
]

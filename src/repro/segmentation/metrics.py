"""Approximation-quality metrics for segmentations.

``compression_rate`` is the paper's ``r`` — "the number of observations
represented by one data segment on average" (Table 1) — the quantity Table
3 sweeps against the error tolerance.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..datagen.model import PiecewiseLinearSignal
from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError
from ..types import DataSegment
from .base import check_contiguous

__all__ = [
    "compression_rate",
    "max_abs_error",
    "mean_abs_error",
    "verify_tolerance",
]


def compression_rate(series: TimeSeries, segments: Sequence[DataSegment]) -> float:
    """The paper's ``r``: observations per segment, ``n / m``."""
    if not segments:
        raise InvalidParameterError("no segments")
    return len(series) / len(segments)


def _approximation(segments: Sequence[DataSegment]) -> PiecewiseLinearSignal:
    segs: List[DataSegment] = list(segments)
    check_contiguous(segs)
    return PiecewiseLinearSignal.from_segments(segs)


def _errors_at_samples(
    series: TimeSeries, segments: Sequence[DataSegment]
) -> np.ndarray:
    f = _approximation(segments)
    if f.t_start > series.t_start or f.t_end < series.t_end:
        raise InvalidParameterError(
            "segments do not cover the series time extent"
        )
    return np.abs(f(series.times) - series.values)


def max_abs_error(series: TimeSeries, segments: Sequence[DataSegment]) -> float:
    """``max_i |f(t_i) - v_i|`` over the sampled observations.

    By Lemma 1, the same bound then holds for *every* point of the Model G
    signal, not just the samples.
    """
    return float(_errors_at_samples(series, segments).max())


def mean_abs_error(series: TimeSeries, segments: Sequence[DataSegment]) -> float:
    """Mean absolute deviation at the sampled observations."""
    return float(_errors_at_samples(series, segments).mean())


def verify_tolerance(
    series: TimeSeries,
    segments: Sequence[DataSegment],
    epsilon: float,
    slack: float = 1e-9,
) -> bool:
    """Whether the segmentation satisfies Definition 2 (error <= eps/2).

    ``slack`` absorbs float rounding in the chord evaluations.
    """
    return max_abs_error(series, segments) <= epsilon / 2.0 + slack

"""Online sliding-window segmentation (the paper's segmenter).

This is the "generic online sliding window algorithm ... with linear
interpolation" of Keogh, Chu, Hart & Pazzani (ICDM 2001), Section 2.1,
with maximum error ``epsilon/2`` as Section 4.1 of the SegDiff paper
prescribes.

Instead of re-scanning the window after each new point (O(window) per
point), we maintain a *slope funnel*: for anchor ``(t_a, v_a)``, an interior
point ``(t_i, v_i)`` constrains the chord slope ``s`` to

    (v_i - eps/2 - v_a) / (t_i - t_a)  <=  s  <=  (v_i + eps/2 - v_a) / (t_i - t_a)

so the window can be extended to a candidate endpoint ``(t_j, v_j)`` iff its
chord slope lies in the running intersection of all interior constraints.
That check is O(1) per point and is *exact* for interpolating chords —
identical output to the quadratic re-scan, which the tests verify.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..datagen.series import TimeSeries
from ..errors import InvalidSeriesError
from ..types import DataSegment, Observation
from .base import validate_epsilon

__all__ = ["SlidingWindowSegmenter"]


class SlidingWindowSegmenter:
    """Streaming piecewise-linear segmenter with tolerance ``epsilon/2``.

    Use :meth:`segment` for a whole series, or feed points one at a time
    with :meth:`push` (each call returns the segments finalized by that
    point — usually none) and call :meth:`finish` to flush the tail.  The
    streaming interface is what lets feature extraction run "as soon as
    data are being collected" (Section 4.3.2).
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._max_err = self.epsilon / 2.0
        self.reset()

    def reset(self) -> None:
        """Forget all streaming state."""
        self._anchor: Optional[Observation] = None
        self._endpoint: Optional[Observation] = None
        self._slope_lo = -math.inf
        self._slope_hi = math.inf
        self._count = 0

    # ------------------------------------------------------------------ #
    # streaming interface
    # ------------------------------------------------------------------ #

    def push(self, t: float, v: float) -> List[DataSegment]:
        """Consume one observation; return any segment it finalized."""
        if self._anchor is not None:
            last_t = self._endpoint.t if self._endpoint else self._anchor.t
            if t <= last_t:
                raise InvalidSeriesError(
                    f"timestamps must be strictly increasing "
                    f"(got {t} after {last_t})"
                )
        self._count += 1
        point = Observation(float(t), float(v))

        if self._anchor is None:
            self._anchor = point
            return []
        if self._endpoint is None:
            self._endpoint = point
            self._add_constraint(point)
            return []

        slope = (point.v - self._anchor.v) / (point.t - self._anchor.t)
        if self._slope_lo <= slope <= self._slope_hi:
            self._endpoint = point
            self._add_constraint(point)
            return []

        # The window can no longer absorb this point: finalize the segment
        # ending at the previous point and restart the funnel there.
        segment = DataSegment(
            self._anchor.t, self._anchor.v, self._endpoint.t, self._endpoint.v
        )
        self._anchor = self._endpoint
        self._endpoint = point
        self._slope_lo = -math.inf
        self._slope_hi = math.inf
        self._add_constraint(point)
        return [segment]

    def finish(self) -> List[DataSegment]:
        """Flush the open segment at end of stream (if any) and reset."""
        segments: List[DataSegment] = []
        if self._anchor is not None and self._endpoint is not None:
            segments.append(
                DataSegment(
                    self._anchor.t,
                    self._anchor.v,
                    self._endpoint.t,
                    self._endpoint.v,
                )
            )
        self.reset()
        return segments

    def _add_constraint(self, point: Observation) -> None:
        """Tighten the slope funnel with ``point``'s interior constraint."""
        assert self._anchor is not None
        dt = point.t - self._anchor.t
        dv = point.v - self._anchor.v
        self._slope_lo = max(self._slope_lo, (dv - self._max_err) / dt)
        self._slope_hi = min(self._slope_hi, (dv + self._max_err) / dt)

    # ------------------------------------------------------------------ #
    # batch interface
    # ------------------------------------------------------------------ #

    def segment(self, series: TimeSeries) -> List[DataSegment]:
        """Segment a whole series; requires at least two observations."""
        if len(series) < 2:
            raise InvalidSeriesError(
                "segmentation needs at least two observations"
            )
        self.reset()
        segments: List[DataSegment] = []
        for t, v in zip(series.times, series.values):
            segments.extend(self.push(float(t), float(v)))
        segments.extend(self.finish())
        return segments

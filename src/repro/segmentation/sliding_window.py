"""Online sliding-window segmentation (the paper's segmenter).

This is the "generic online sliding window algorithm ... with linear
interpolation" of Keogh, Chu, Hart & Pazzani (ICDM 2001), Section 2.1,
with maximum error ``epsilon/2`` as Section 4.1 of the SegDiff paper
prescribes.

Instead of re-scanning the window after each new point (O(window) per
point), we maintain a *slope funnel*: for anchor ``(t_a, v_a)``, an interior
point ``(t_i, v_i)`` constrains the chord slope ``s`` to

    (v_i - eps/2 - v_a) / (t_i - t_a)  <=  s  <=  (v_i + eps/2 - v_a) / (t_i - t_a)

so the window can be extended to a candidate endpoint ``(t_j, v_j)`` iff its
chord slope lies in the running intersection of all interior constraints.
That check is O(1) per point and is *exact* for interpolating chords —
identical output to the quadratic re-scan, which the tests verify.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

import numpy as np

from ..datagen.series import TimeSeries
from ..errors import InvalidSeriesError
from ..obs.metrics import REGISTRY
from ..types import DataSegment, Observation
from .base import validate_epsilon

__all__ = ["SlidingWindowSegmenter"]

_OBSERVATIONS = REGISTRY.counter(
    "repro_segmenter_observations_total",
    "Observations consumed by sliding-window segmenters",
)
_SEGMENTS = REGISTRY.counter(
    "repro_segmenter_segments_total",
    "Data segments finalized by sliding-window segmenters",
)
_PUSH_BATCH_SECONDS = REGISTRY.histogram(
    "repro_segmenter_push_batch_seconds",
    "Wall time of SlidingWindowSegmenter.push_batch calls",
)

#: Minimum points stepped scalar after each breakpoint before escalating
#: to the vectorized scan — keeps short-segment (low-compression) streams
#: at scalar cost instead of paying numpy call overhead per segment.  The
#: effective probe adapts to ~2× the stream's recent mean run length, so
#: the vector path only engages for runs long enough to amortize it.
_PROBE = 8
#: Probe ceiling ≈ the crossover run length where the vectorized scan's
#: fixed per-call overhead amortizes below scalar stepping cost.
_PROBE_MAX = 40
#: EMA smoothing for the run-length estimate driving the probe size.
_RUN_EMA = 0.125
#: Initial lookahead of the vectorized scan; doubled while a run of
#: in-bound points keeps going, so long segments cost O(len) total.
_CHUNK = 64


class SlidingWindowSegmenter:
    """Streaming piecewise-linear segmenter with tolerance ``epsilon/2``.

    Use :meth:`segment` for a whole series, or feed points one at a time
    with :meth:`push` (each call returns the segments finalized by that
    point — usually none) and call :meth:`finish` to flush the tail.  The
    streaming interface is what lets feature extraction run "as soon as
    data are being collected" (Section 4.3.2).
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._max_err = self.epsilon / 2.0
        self.reset()

    def reset(self) -> None:
        """Forget all streaming state."""
        self._anchor: Optional[Observation] = None
        self._endpoint: Optional[Observation] = None
        self._slope_lo = -math.inf
        self._slope_hi = math.inf
        self._count = 0
        #: 0-based offset (into the most recent :meth:`push_batch` input)
        #: of the observation that closed the batch's last segment, or
        #: ``None`` when the batch closed none.  The batched ingest path
        #: uses it to maintain checkpoint coverage accounting.
        self.last_close_offset: Optional[int] = None
        # heuristic only (never affects output): recent mean run length,
        # used by push_batch to size its scalar probe
        self._avg_run = float(_PROBE)

    # ------------------------------------------------------------------ #
    # streaming interface
    # ------------------------------------------------------------------ #

    def push(self, t: float, v: float) -> List[DataSegment]:
        """Consume one observation; return any segment it finalized."""
        if self._anchor is not None:
            last_t = self._endpoint.t if self._endpoint else self._anchor.t
            if t <= last_t:
                raise InvalidSeriesError(
                    f"timestamps must be strictly increasing "
                    f"(got {t} after {last_t})"
                )
        self._count += 1
        _OBSERVATIONS.inc()
        point = Observation(float(t), float(v))

        if self._anchor is None:
            self._anchor = point
            return []
        if self._endpoint is None:
            self._endpoint = point
            self._add_constraint(point)
            return []

        slope = (point.v - self._anchor.v) / (point.t - self._anchor.t)
        if self._slope_lo <= slope <= self._slope_hi:
            self._endpoint = point
            self._add_constraint(point)
            return []

        # The window can no longer absorb this point: finalize the segment
        # ending at the previous point and restart the funnel there.
        segment = DataSegment(
            self._anchor.t, self._anchor.v, self._endpoint.t, self._endpoint.v
        )
        self._anchor = self._endpoint
        self._endpoint = point
        self._slope_lo = -math.inf
        self._slope_hi = math.inf
        self._add_constraint(point)
        _SEGMENTS.inc()
        return [segment]

    def push_batch(self, ts, vs) -> List[DataSegment]:
        """Consume a batch of observations; return the segments it closed.

        Bit-for-bit equivalent to calling :meth:`push` on every
        ``(t, v)`` pair in order — every comparison and every floating
        point operation is performed with the same operands — but runs of
        in-bound points are processed vectorized with numpy, falling back
        to scalar bookkeeping only at segment breakpoints.  Mixing
        :meth:`push` and :meth:`push_batch` on one stream is supported.

        Unlike :meth:`push`, input validation happens up front: a
        non-increasing timestamp raises before *any* point of the batch
        is consumed.
        """
        ts = np.ascontiguousarray(ts, dtype=float)
        vs = np.ascontiguousarray(vs, dtype=float)
        if ts.ndim != 1 or vs.ndim != 1 or ts.shape[0] != vs.shape[0]:
            raise InvalidSeriesError(
                "push_batch needs matching 1-D time and value arrays"
            )
        self.last_close_offset = None
        n = ts.shape[0]
        if n == 0:
            return []
        if self._anchor is not None:
            last_t = self._endpoint.t if self._endpoint else self._anchor.t
            if ts[0] <= last_t:
                raise InvalidSeriesError(
                    f"timestamps must be strictly increasing "
                    f"(got {ts[0]} after {last_t})"
                )
        if n > 1:
            diffs = np.diff(ts)
            if not np.all(diffs > 0):
                bad = int(np.argmax(diffs <= 0))
                raise InvalidSeriesError(
                    f"timestamps must be strictly increasing "
                    f"(got {ts[bad + 1]} after {ts[bad]})"
                )

        t_begin = time.perf_counter()
        segments: List[DataSegment] = []
        self._count += n
        _OBSERVATIONS.inc(n)
        # python-float views: scalar probes on list elements avoid the
        # numpy-scalar arithmetic penalty (tolist() is exact for float64)
        tl = ts.tolist()
        vl = vs.tolist()
        max_err = self._max_err
        i = 0
        if self._anchor is None:
            self._anchor = Observation(tl[0], vl[0])
            i = 1
        a_t, a_v = self._anchor.t, self._anchor.v
        have_endpoint = self._endpoint is not None
        if i < n and not have_endpoint:
            e_t, e_v = tl[i], vl[i]
            dt = e_t - a_t
            dv = e_v - a_v
            self._slope_lo = max(self._slope_lo, (dv - max_err) / dt)
            self._slope_hi = min(self._slope_hi, (dv + max_err) / dt)
            have_endpoint = True
            i += 1
        else:
            e_t = self._endpoint.t if self._endpoint else a_t
            e_v = self._endpoint.v if self._endpoint else a_v
        lo, hi = self._slope_lo, self._slope_hi
        avg_run = self._avg_run

        while i < n:
            # scalar probe: step a few points before paying numpy overhead;
            # sized to ~2x the recent mean run so typical runs finish
            # scalar and only genuinely long ones escalate to numpy
            probe = avg_run + avg_run
            if probe < _PROBE:
                probe = _PROBE
            elif probe > _PROBE_MAX:
                probe = _PROBE_MAX
            seg_start = i
            probe_end = min(n, i + int(probe))
            broke = -1
            while i < probe_end:
                t = tl[i]
                v = vl[i]
                slope = (v - a_v) / (t - a_t)
                if lo <= slope <= hi:
                    e_t, e_v = t, v
                    dt = t - a_t
                    dv = v - a_v
                    c = (dv - max_err) / dt
                    if c > lo:
                        lo = c
                    c = (dv + max_err) / dt
                    if c < hi:
                        hi = c
                    i += 1
                else:
                    broke = i
                    break
            if broke < 0:
                if i == n:
                    break
                # the run survived the probe: scan ahead vectorized
                j, lo, hi = self._vector_scan(ts, vs, i, a_t, a_v, lo, hi)
                if j > i:
                    e_t, e_v = tl[j - 1], vl[j - 1]
                i = j
                if j == n:
                    break
                broke = j
            # breakpoint: same rotation as the scalar path
            avg_run += (broke - seg_start - avg_run) * _RUN_EMA
            segments.append(DataSegment(a_t, a_v, e_t, e_v))
            a_t, a_v = e_t, e_v
            e_t, e_v = tl[broke], vl[broke]
            dt = e_t - a_t
            dv = e_v - a_v
            lo = (dv - max_err) / dt
            hi = (dv + max_err) / dt
            self.last_close_offset = broke
            i = broke + 1

        self._anchor = Observation(a_t, a_v)
        if have_endpoint:
            self._endpoint = Observation(e_t, e_v)
        self._slope_lo = lo
        self._slope_hi = hi
        self._avg_run = avg_run
        if segments:
            _SEGMENTS.inc(len(segments))
        _PUSH_BATCH_SECONDS.observe(time.perf_counter() - t_begin)
        return segments

    def _vector_scan(self, ts, vs, i, a_t, a_v, lo, hi):
        """Scan from ``i`` for the first point breaking the funnel.

        Returns ``(j, lo, hi)`` where ``j`` is the break index (or
        ``len(ts)``) and ``lo``/``hi`` the funnel tightened by every
        accepted point before ``j``.  Lookahead grows geometrically, so
        long runs amortize to O(1) numpy ops per point.
        """
        n = ts.shape[0]
        pos = i
        chunk = _CHUNK
        while pos < n:
            end = min(n, pos + chunk)
            dt = ts[pos:end] - a_t
            dv = vs[pos:end] - a_v
            slope = dv / dt
            lo_con = (dv - self._max_err) / dt
            hi_con = (dv + self._max_err) / dt
            # funnel in effect *before* each point: carried state plus the
            # constraints of every earlier accepted point in this chunk
            lo_before = np.empty_like(lo_con)
            hi_before = np.empty_like(hi_con)
            lo_before[0] = lo
            hi_before[0] = hi
            if end - pos > 1:
                np.maximum.accumulate(lo_con[:-1], out=lo_before[1:])
                np.maximum(lo_before[1:], lo, out=lo_before[1:])
                np.minimum.accumulate(hi_con[:-1], out=hi_before[1:])
                np.minimum(hi_before[1:], hi, out=hi_before[1:])
            bad = (slope < lo_before) | (slope > hi_before)
            if bad.any():
                k = pos + int(np.argmax(bad))
                off = k - pos
                if off > 0:
                    lo = max(lo, float(np.max(lo_con[:off])))
                    hi = min(hi, float(np.min(hi_con[:off])))
                return k, lo, hi
            lo = max(lo, float(np.max(lo_con)))
            hi = min(hi, float(np.min(hi_con)))
            pos = end
            chunk *= 2
        return n, lo, hi

    def finish(self) -> List[DataSegment]:
        """Flush the open segment at end of stream (if any) and reset."""
        segments: List[DataSegment] = []
        if self._anchor is not None and self._endpoint is not None:
            segments.append(
                DataSegment(
                    self._anchor.t,
                    self._anchor.v,
                    self._endpoint.t,
                    self._endpoint.v,
                )
            )
        self.reset()
        return segments

    def _add_constraint(self, point: Observation) -> None:
        """Tighten the slope funnel with ``point``'s interior constraint."""
        assert self._anchor is not None
        dt = point.t - self._anchor.t
        dv = point.v - self._anchor.v
        self._slope_lo = max(self._slope_lo, (dv - self._max_err) / dt)
        self._slope_hi = min(self._slope_hi, (dv + self._max_err) / dt)

    # ------------------------------------------------------------------ #
    # batch interface
    # ------------------------------------------------------------------ #

    def segment(self, series: TimeSeries) -> List[DataSegment]:
        """Segment a whole series; requires at least two observations."""
        return self.segment_array(series.times, series.values)

    def segment_array(self, ts, vs) -> List[DataSegment]:
        """Segment whole time/value arrays (the vectorized fast path)."""
        ts = np.asarray(ts, dtype=float)
        if ts.shape[0] < 2:
            raise InvalidSeriesError(
                "segmentation needs at least two observations"
            )
        self.reset()
        segments = self.push_batch(ts, vs)
        segments.extend(self.finish())
        return segments

"""Batch bottom-up segmentation (ablation alternative).

Bottom-up starts from the finest interpolation (one segment per adjacent
sample pair) and greedily merges the adjacent pair whose merged chord has
the smallest maximum absolute error, stopping when every possible merge
would exceed ``epsilon/2``.  It usually yields fewer segments than the
online sliding window at the same tolerance, at the cost of being offline
— the ablation bench quantifies that trade-off on CAD data.

Implementation: a doubly-linked list of segment nodes plus a lazy heap of
candidate merges keyed by merge cost.  Merge costs are evaluated exactly
(max deviation of interior samples from the merged chord).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from ..datagen.series import TimeSeries
from ..errors import InvalidSeriesError
from ..types import DataSegment
from .base import validate_epsilon

__all__ = ["BottomUpSegmenter"]


class _Node:
    """One current segment: samples ``[lo, hi]`` (inclusive indices)."""

    __slots__ = ("lo", "hi", "prev", "next", "alive", "version")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.prev: Optional["_Node"] = None
        self.next: Optional["_Node"] = None
        self.alive = True
        self.version = 0  # bumped on every mutation to invalidate heap entries


class BottomUpSegmenter:
    """Bottom-up merge segmentation with tolerance ``epsilon/2``."""

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._max_err = self.epsilon / 2.0

    def segment(self, series: TimeSeries) -> List[DataSegment]:
        """Segment a whole series; requires at least two observations."""
        return self.segment_array(series.times, series.values)

    def segment_array(self, ts, vs) -> List[DataSegment]:
        """Segment raw time/value arrays (skips TimeSeries validation)."""
        t = np.asarray(ts, dtype=float)
        v = np.asarray(vs, dtype=float)
        n = t.shape[0]
        if n < 2:
            raise InvalidSeriesError(
                "segmentation needs at least two observations"
            )
        if n == 2:
            return [DataSegment(t[0], v[0], t[1], v[1])]

        nodes = [_Node(i, i + 1) for i in range(n - 1)]
        for a, b in zip(nodes, nodes[1:]):
            a.next = b
            b.prev = a

        heap: List[tuple] = []
        for node in nodes[:-1]:
            self._push_merge(heap, t, v, node)

        while heap:
            cost, _tie, node, v_left, v_right = heapq.heappop(heap)
            if (
                not node.alive
                or node.next is None
                or not node.next.alive
                or node.version != v_left
                or node.next.version != v_right
            ):
                continue  # stale entry
            if cost > self._max_err:
                break
            other = node.next
            node.hi = other.hi
            node.version += 1
            other.alive = False
            node.next = other.next
            if node.next is not None:
                node.next.prev = node
            if node.prev is not None:
                self._push_merge(heap, t, v, node.prev)
            if node.next is not None:
                self._push_merge(heap, t, v, node)

        segments: List[DataSegment] = []
        head: Optional[_Node] = nodes[0]
        while head is not None:
            segments.append(
                DataSegment(
                    float(t[head.lo]),
                    float(v[head.lo]),
                    float(t[head.hi]),
                    float(v[head.hi]),
                )
            )
            head = head.next
        return segments

    def _push_merge(
        self, heap: List[tuple], t: np.ndarray, v: np.ndarray, node: _Node
    ) -> None:
        """Queue the candidate merge of ``node`` with its right neighbour."""
        if node.next is None or not node.alive or not node.next.alive:
            return
        cost = _chord_error(t, v, node.lo, node.next.hi)
        heapq.heappush(
            heap, (cost, node.lo, node, node.version, node.next.version)
        )


def _chord_error(t: np.ndarray, v: np.ndarray, lo: int, hi: int) -> float:
    """Max |interpolating chord - samples| over samples ``lo..hi``."""
    if hi - lo < 2:
        return 0.0
    slope = (v[hi] - v[lo]) / (t[hi] - t[lo])
    interior_t = t[lo + 1 : hi]
    interior_v = v[lo + 1 : hi]
    chord = v[lo] + slope * (interior_t - t[lo])
    return float(np.max(np.abs(chord - interior_v)))

"""SWAB: Sliding-Window-And-Bottom-up (Keogh et al., ICDM 2001).

SWAB keeps a small buffer of recent samples, runs bottom-up inside it, and
emits only the leftmost segment before refilling — getting close to
bottom-up quality while remaining (semi-)online.  Included as an ablation
alternative to the paper's plain sliding window.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError, InvalidSeriesError
from ..types import DataSegment
from .base import validate_epsilon
from .bottom_up import BottomUpSegmenter

__all__ = ["SWABSegmenter"]


class SWABSegmenter:
    """SWAB segmentation with tolerance ``epsilon/2``.

    ``buffer_size`` is the number of samples bottom-up sees at a time; the
    classic recommendation is enough samples for roughly five or six
    segments.
    """

    def __init__(self, epsilon: float, buffer_size: int = 120) -> None:
        self.epsilon = validate_epsilon(epsilon)
        if buffer_size < 4:
            raise InvalidParameterError("buffer_size must be >= 4")
        self.buffer_size = buffer_size
        self._bottom_up = BottomUpSegmenter(epsilon)

    def segment(self, series: TimeSeries) -> List[DataSegment]:
        """Segment a whole series; requires at least two observations."""
        return self.segment_array(series.times, series.values)

    def segment_array(self, ts, vs) -> List[DataSegment]:
        """Segment raw time/value arrays (skips TimeSeries validation)."""
        t = np.asarray(ts, dtype=float)
        v = np.asarray(vs, dtype=float)
        n = t.shape[0]
        if n < 2:
            raise InvalidSeriesError(
                "segmentation needs at least two observations"
            )
        if n <= self.buffer_size:
            return self._bottom_up.segment_array(t, v)

        segments: List[DataSegment] = []
        start = 0  # index of the first sample in the buffer
        while start < n - 1:
            stop = min(start + self.buffer_size, n)
            local = self._bottom_up.segment_array(t[start:stop], v[start:stop])
            if stop == n:
                # Last buffer: everything it produced is final.
                segments.extend(local)
                break
            # Emit only the leftmost segment, then slide the buffer to its
            # right boundary (which is an actual sample by construction).
            first = local[0]
            segments.append(first)
            # find the sample index of the emitted segment's end
            boundary = start + int(
                _index_of(t, first.t_end, start, stop)
            )
            if boundary <= start:  # defensive: always make progress
                boundary = start + 1
            start = boundary
        return segments


def _index_of(t, value: float, lo: int, hi: int) -> int:
    """Index (relative to ``lo``) of ``value`` inside ``t[lo:hi]``."""
    return int(np.searchsorted(t[lo:hi], value))

"""Segmenter protocol and shared helpers.

A segmenter turns a sampled :class:`~repro.datagen.series.TimeSeries` into
contiguous :class:`~repro.types.DataSegment` objects forming a piecewise
linear approximation ``f`` with ``|f(t_i) - v_i| <= epsilon/2`` at every
sample (Definition 2 / Lemma 1 of the paper).

All segmenters in this package are *interpolating*: segment endpoints are
actual observations, so ``f`` passes through them exactly and consecutive
segments share their boundary point — the input convention Algorithm 1
(feature extraction) requires.
"""

from __future__ import annotations

from typing import List, Protocol

from ..datagen.series import TimeSeries
from ..errors import InvalidParameterError, InvalidSeriesError
from ..types import DataSegment

__all__ = ["Segmenter", "segment_series", "validate_epsilon", "check_contiguous"]


class Segmenter(Protocol):
    """Anything that can segment a series under an error tolerance."""

    epsilon: float

    def segment(self, series: TimeSeries) -> List[DataSegment]:
        """Return contiguous segments approximating ``series``."""
        ...


def validate_epsilon(epsilon: float) -> float:
    """Validate the user error tolerance ``epsilon >= 0`` (Definition 2)."""
    if not (epsilon >= 0.0):
        raise InvalidParameterError(f"epsilon must be >= 0, got {epsilon}")
    return float(epsilon)


def check_contiguous(segments: List[DataSegment]) -> None:
    """Assert segments connect end-to-start; raise otherwise."""
    for prev, cur in zip(segments, segments[1:]):
        if prev.t_end != cur.t_start or prev.v_end != cur.v_start:
            raise InvalidSeriesError(
                f"segments not contiguous at t={prev.t_end}"
            )


def segment_series(
    series: TimeSeries, epsilon: float, method: str = "sliding-window"
) -> List[DataSegment]:
    """Segment ``series`` with the named method.

    ``method`` is one of ``"sliding-window"`` (the paper's choice),
    ``"bottom-up"``, or ``"swab"``.
    """
    # imported here to avoid a circular import at package load
    from .sliding_window import SlidingWindowSegmenter
    from .bottom_up import BottomUpSegmenter
    from .swab import SWABSegmenter

    segmenters = {
        "sliding-window": SlidingWindowSegmenter,
        "bottom-up": BottomUpSegmenter,
        "swab": SWABSegmenter,
    }
    if method not in segmenters:
        raise InvalidParameterError(
            f"unknown segmentation method {method!r}; "
            f"choose from {sorted(segmenters)}"
        )
    return segmenters[method](epsilon).segment(series)

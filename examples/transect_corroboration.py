#!/usr/bin/env python3
"""Transect-level CAD detection: corroborating drops across sensors.

A genuine cold-air-drainage event pools cold air along the canyon floor,
so several sensors record the drop at roughly the same time; an isolated
single-sensor drop is more likely local turbulence or an artifact.  This
example builds one SegDiff index per sensor and asks the transect-level
question directly:

    "when did at least three sensors see a >= 2.5 C drop within an hour,
     ending within 30 minutes of each other?"

Run with::

    python examples/transect_corroboration.py
"""

from repro import TransectIndex
from repro.datagen import CADConfig, CADTransectGenerator, robust_loess

HOUR = 3600.0


def main() -> None:
    cfg = CADConfig(
        days=5, seed=20080325, n_sensors=11, event_probability=0.8
    )
    gen = CADTransectGenerator(cfg)
    print(f"Generating {cfg.n_sensors} sensors x {cfg.days} days ...")
    data = {
        name: robust_loess(series, span=9, iterations=2)
        for name, series in gen.generate_all().items()
    }

    transect = TransectIndex.build(data, epsilon=0.2, window=8 * HOUR)
    stats = transect.stats()
    print(
        f"Indexed {stats['observations']} observations into "
        f"{stats['segments']} segments ({stats['feature_rows']} feature rows)"
    )

    per_sensor = transect.search_drops(1 * HOUR, -2.5)
    print(f"\nPer-sensor hits (>= 2.5 C drop within 1 h):")
    for i, name in enumerate(gen.sensor_names()):
        bar = "#" * min(len(per_sensor.get(name, [])), 60)
        depth = gen.depth_factor(i)
        print(f"  {name}  depth={depth:.2f}  {bar}")

    events = transect.search_corroborated(
        1 * HOUR, -2.5, min_sensors=3, slack=1800.0
    )
    print(f"\nCorroborated events (>= 3 sensors within 30 min): {len(events)}")
    for ev in events:
        lo, hi = ev.window
        day = int(lo // 86400)
        hour = (lo % 86400) / HOUR
        print(
            f"  day {day}, ~{hour:04.1f}h: {ev.n_sensors} sensors "
            f"({', '.join(ev.sensors)})"
        )

    # ground truth comparison: nights on which >= 3 sensors had an
    # injected event are exactly what corroboration should recover
    nights = {}
    for truth in gen.events:
        nights.setdefault(int(truth.t_onset // 86400), set()).add(truth.sensor)
    strong_nights = sorted(d for d, s in nights.items() if len(s) >= 3)
    found_days = {int(ev.window[0] // 86400) for ev in events}
    recovered = [d for d in strong_nights if d in found_days]
    print(
        f"\nGround truth: {len(strong_nights)} nights with >= 3 injected "
        f"events; corroboration recovered {len(recovered)} of them "
        f"({sorted(found_days)} vs {strong_nights})"
    )

    transect.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""SegDiff vs the paper's baselines: space, speed, and what each finds.

Runs the same drop search three ways:

* **SegDiff** — the paper's framework (this library's core);
* **Exh** — exhaustive materialization of all sampled pairs;
* **Naive** — on-the-fly scan, nothing stored.

and reports storage, query latency, and result character.  It also
demonstrates the guarantee difference the paper proves in Section 5.1:
events of the continuous Model G signal that fall *between* samples are
found by SegDiff but invisible to Exh/Naive.

Run with::

    python examples/compare_baselines.py
"""

import time

from repro import ExhIndex, NaiveScan, SegDiffIndex, TimeSeries
from repro.datagen import CADConfig, CADTransectGenerator, robust_loess
from repro.experiments.report import format_bytes, format_seconds

HOUR = 3600.0
T, V = 1 * HOUR, -3.0


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def main() -> None:
    cfg = CADConfig(days=14, seed=5, event_probability=0.7)
    raw = CADTransectGenerator(cfg).generate(12)
    series = robust_loess(raw, span=9, iterations=2)
    print(f"Data: {series} ({series.duration / 86400:.0f} days)")

    build_sd, segdiff = timed(
        lambda: SegDiffIndex.build(series, 0.2, 8 * HOUR, backend="sqlite")
    )
    build_exh, exh = timed(
        lambda: ExhIndex.build(series, 8 * HOUR, backend="sqlite")
    )
    naive = NaiveScan(series)

    q_sd, sd_hits = timed(lambda: segdiff.search_drops(T, V))
    q_exh, exh_hits = timed(lambda: exh.search_drops(T, V))
    q_naive, naive_hits = timed(lambda: naive.search_drops(T, V))

    print(f"\n{'':>10}  {'build':>10}  {'disk':>10}  {'query':>10}  results")
    print(
        f"{'SegDiff':>10}  {format_seconds(build_sd):>10}  "
        f"{format_bytes(segdiff.store.disk_bytes()):>10}  "
        f"{format_seconds(q_sd):>10}  {len(sd_hits)} periods"
    )
    print(
        f"{'Exh':>10}  {format_seconds(build_exh):>10}  "
        f"{format_bytes(exh.disk_bytes()):>10}  "
        f"{format_seconds(q_exh):>10}  {len(exh_hits)} sample pairs"
    )
    print(
        f"{'Naive':>10}  {'-':>10}  {'0 B':>10}  "
        f"{format_seconds(q_naive):>10}  {len(naive_hits)} sample pairs"
    )

    # --- the Model G guarantee difference -----------------------------
    # A drop that only exists between samples: the signal dives and fully
    # recovers between two consecutive 5-minute readings ... is
    # impossible to *sample*, so instead we sample sparsely around a fast
    # V-shape: the deepest sampled pair understates the true drop.
    print("\nModel G demonstration:")
    demo = TimeSeries(
        [0.0, 600.0, 840.0, 1500.0, 2100.0],
        [10.0, 9.8, 5.9, 9.6, 9.7],
        name="sparse",
    )
    sd = SegDiffIndex.build(demo, epsilon=0.0, window=HOUR)
    sd_pairs = sd.search_drops(600.0, -3.8)
    exh_demo = ExhIndex.build(demo, HOUR)
    exh_events = exh_demo.search_drops(600.0, -3.8)
    print(
        f"  drop of 3.9 C in 240 s (t=600..840): SegDiff finds "
        f"{len(sd_pairs)} period(s); Exh finds {len(exh_events)} pair(s)"
    )
    # tighten the span below the sampling gap: only the interpolated
    # event remains, and only SegDiff can still see part of it
    sd_pairs = sd.search_drops(120.0, -1.5)
    exh_events = exh_demo.search_drops(120.0, -1.5)
    print(
        f"  drop of 1.5 C within 120 s (between samples): SegDiff "
        f"{len(sd_pairs)} period(s); Exh {len(exh_events)} pair(s) "
        "<- Exh is blind here"
    )

    segdiff.close()
    exh.close()
    sd.close()
    exh_demo.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Jump search on a non-sensor domain: price spikes in a tick series.

Section 2 generalizes the problem statement beyond temperature: any 1-D
time series works, and the symmetric *jump* search finds rises instead of
drops.  This example scans a synthetic price random walk for rallies —
"rose at least 2.5 within 30 minutes" — and cross-checks SegDiff's
periods against the exhaustive baseline's raw events.

Run with::

    python examples/jump_search_finance.py
"""

from repro import ExhIndex, JumpQuery, SegDiffIndex, witness_event
from repro.datagen import random_walk_series

HOUR = 3600.0


def main() -> None:
    # a trading week of 10-second ticks
    prices = random_walk_series(
        n=6 * 3600 // 10 * 5, dt=10.0, step_std=0.05, seed=42, name="ticks"
    )
    print(f"Tick data: {prices}")

    t_thr, v_thr = 0.5 * HOUR, 2.0
    index = SegDiffIndex.build(prices, epsilon=0.1, window=2 * HOUR)
    pairs = index.search_jumps(t_thr, v_thr)
    print(
        f"\nJump search (rise >= {v_thr} within {t_thr / 60:.0f} min): "
        f"{len(pairs)} periods from {index.stats().n_segments} segments "
        f"(r = {index.stats().compression_rate:.1f})"
    )

    query = JumpQuery(t_thr, v_thr)
    best = None
    for pair in pairs:
        ev = witness_event(pair, prices, query)
        if ev and (best is None or ev.dv > best.dv):
            best = ev
    if best:
        print(
            f"Strongest rally: +{best.dv:.2f} over {best.dt / 60:.1f} min "
            f"starting at t={best.t_first:.0f}"
        )

    # cross-check against the exhaustive baseline
    exh = ExhIndex.build(prices, window=2 * HOUR)
    events = exh.search_jumps(t_thr, v_thr)
    covered = sum(
        1
        for ev in events
        if any(
            p.t_d <= ev.t_first <= p.t_c and p.t_b <= ev.t_second <= p.t_a
            for p in pairs
        )
    )
    if events:
        print(
            f"Exh raw events: {len(events)}; covered by SegDiff periods: "
            f"{covered} ({100.0 * covered / len(events):.1f}% — "
            "Theorem 1 says 100%)"
        )
    else:
        print(
            "Exh found no raw sampled events; SegDiff's extra periods are "
            "within the 2*epsilon tolerance Theorem 1 permits"
        )

    index.close()
    exh.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: index a day of sensor data and search for drops.

This is the paper's motivating scenario end-to-end: a biologist wants
periods when the temperature fell at least 3 degrees Celsius within one
hour (a Cold Air Drainage event).

Run with::

    python examples/quickstart.py
"""

from repro import DropQuery, SegDiffIndex, witness_event
from repro.datagen import generate_cad_day

HOUR = 3600.0


def main() -> None:
    # One day of synthetic CAD-transect temperature data (5-minute
    # sampling), with the injected ground-truth events for comparison.
    series, truth = generate_cad_day(seed=7)
    print(f"Data: {series}")
    print(f"Ground truth: {len(truth)} injected CAD event(s)")
    for ev in truth:
        print(
            f"  drop of {ev.depth:.1f} C between t={ev.t_onset:.0f} "
            f"and t={ev.t_bottom:.0f}"
        )

    # Build the SegDiff index: error tolerance 0.2 C, longest query span 8 h.
    index = SegDiffIndex.build(series, epsilon=0.2, window=8 * HOUR)
    stats = index.stats()
    print(
        f"\nIndex: {stats.n_segments} segments over "
        f"{stats.n_observations} observations "
        f"(compression rate r = {stats.compression_rate:.1f})"
    )

    # The canonical CAD search: a drop of >= 3 C within 1 hour.
    pairs = index.search_drops(t_threshold=1 * HOUR, v_threshold=-3.0)
    print(f"\nSearch (drop <= -3 C within 1 h): {len(pairs)} candidate periods")

    # Refine: locate the exact deepest event inside each returned period.
    query = DropQuery(1 * HOUR, -3.0)
    for pair in pairs[:5]:
        ev = witness_event(pair, series, query)
        print(
            f"  drop starts in [{pair.t_d:8.0f}, {pair.t_c:8.0f}], "
            f"ends in [{pair.t_b:8.0f}, {pair.t_a:8.0f}]  "
            f"(deepest: {ev.dv:+.2f} C over {ev.dt / 60:.0f} min)"
        )
    if len(pairs) > 5:
        print(f"  ... and {len(pairs) - 5} more")

    index.close()


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A tour of MiniDB, the from-scratch storage engine.

The paper's evaluation is really a story about storage engines: how many
pages a query touches, what B-trees buy and when they betray you, and
what a cache hides.  This example makes each act of that story visible
with MiniDB's counters.

Run with::

    python examples/storage_engine_tour.py
"""

from repro import DropQuery, SegDiffIndex
from repro.datagen import CADConfig, CADTransectGenerator, robust_loess
from repro.storage.minidb import MiniDbFeatureStore

HOUR = 3600.0


def show(title: str, stats, hits: int) -> None:
    print(
        f"  {title:<34} {stats.page_reads:>7} page reads "
        f"({stats.misses:>6} cold, {stats.hits:>6} cached)   {hits} hits"
    )


def main() -> None:
    cfg = CADConfig(days=7, seed=20051201, event_probability=0.7)
    raw = CADTransectGenerator(cfg).generate(12)
    series = robust_loess(raw, span=9, iterations=2)

    store = MiniDbFeatureStore(cache_pages=64)  # a deliberately small pool
    index = SegDiffIndex(epsilon=0.2, window=8 * HOUR, store=store)
    index.ingest(series)
    index.finalize()

    counts = store.counts()
    print(f"Engine file: {store.path}")
    print(
        f"Tables: {counts.total} feature rows in "
        f"{store.feature_bytes() // 4096} heap pages; B+trees use "
        f"{store.index_bytes() // 4096} pages"
    )
    drop_tree = store.db.table("drop_points").index("by_key")
    print(
        f"drop_points B+tree: height {drop_tree.height()}, "
        f"{drop_tree.n_pages()} pages, fanout {drop_tree.leaf_fanout}"
    )

    print("\nAct 1 — a selective query (the B-tree's home turf):")
    q = DropQuery(0.5 * HOUR, -8.0)
    hits = store.search(q, mode="scan", cache="cold")
    show("sequential scan, cold", store.last_query_stats, len(hits))
    hits = store.search(q, mode="index", cache="cold")
    show("B+tree, cold", store.last_query_stats, len(hits))

    print("\nAct 2 — the canonical CAD query:")
    q = DropQuery(1 * HOUR, -3.0)
    hits = store.search(q, mode="scan", cache="cold")
    show("sequential scan, cold", store.last_query_stats, len(hits))
    hits = store.search(q, mode="index", cache="cold")
    show("B+tree, cold", store.last_query_stats, len(hits))

    print("\nAct 3 — a hard query (index pays a heap fetch per match):")
    q = DropQuery(8 * HOUR, -0.5)
    hits = store.search(q, mode="scan", cache="cold")
    show("sequential scan, cold", store.last_query_stats, len(hits))
    hits = store.search(q, mode="index", cache="cold")
    show("B+tree, cold", store.last_query_stats, len(hits))

    print("\nAct 4 — what a warm cache hides (same hard query):")
    store.search(q, mode="scan", cache="warm")  # prime the pool
    hits = store.search(q, mode="scan", cache="warm")
    show("sequential scan, warm", store.last_query_stats, len(hits))

    print("\nEpilogue — the planner reads the same tea leaves:")
    for kind_t, kind_v in ((0.5 * HOUR, -8.0), (8 * HOUR, -0.5)):
        plan = index.explain("drop", kind_t, kind_v)
        print(
            f"  T={kind_t / HOUR:.1f}h V={kind_v:+.1f}: "
            f"selectivity ~{plan['estimated_selectivity']:.3f} "
            f"-> mode={plan['chosen_mode']}"
        )

    index.close()


if __name__ == "__main__":
    main()

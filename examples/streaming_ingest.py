#!/usr/bin/env python3
"""Streaming ingest: search while data is still arriving.

The paper stresses that segmentation and Algorithm 1 are both online, so
"there is no considerable delay for users to search new data".  This
example replays a live feed: observations arrive one at a time, the index
checkpoints every simulated hour, and a standing CAD watch query runs
after each checkpoint — detecting the drop soon after it happens.

Run with::

    python examples/streaming_ingest.py
"""

from repro import SegDiffIndex
from repro.datagen import generate_cad_day

HOUR = 3600.0


def main() -> None:
    series, truth = generate_cad_day(seed=5)
    print(f"Replaying {len(series)} observations as a live feed")
    for ev in truth:
        print(
            f"(ground truth: {ev.depth:.1f} C drop bottoming out at "
            f"t={ev.t_bottom:.0f})"
        )

    index = SegDiffIndex(epsilon=0.2, window=8 * HOUR)
    seen = set()
    next_checkpoint = series.t_start + HOUR

    for t, v in zip(series.times, series.values):
        index.append(float(t), float(v))
        if t < next_checkpoint:
            continue
        next_checkpoint += HOUR
        index.checkpoint()
        for pair in index.search_drops(1 * HOUR, -3.0):
            if pair.as_tuple() in seen:
                continue
            seen.add(pair.as_tuple())
            lag = t - pair.t_a
            print(
                f"t={t:7.0f}  ALERT drop ending in "
                f"[{pair.t_b:.0f}, {pair.t_a:.0f}] "
                f"(detected {lag / 60:.0f} min after the period closed)"
            )

    index.finalize()
    final = index.search_drops(1 * HOUR, -3.0)
    fresh = [p for p in final if p.as_tuple() not in seen]
    print(
        f"\nStream done: {len(seen)} alerts during replay, "
        f"{len(fresh)} more after the final flush, "
        f"{index.stats().n_segments} segments total"
    )
    index.close()


if __name__ == "__main__":
    main()

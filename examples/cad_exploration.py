#!/usr/bin/env python3
"""Exploratory CAD analysis across the whole transect (the paper's
Figure 1 workflow, and the exploratory use-case of the introduction).

Biologists "pose queries with different drops and time spans" — the same
index answers them all interactively.  The script:

1. generates a week of data for every sensor on the transect;
2. applies the paper's preprocessing (robust smoothing);
3. builds one SegDiff index per sensor;
4. runs a panel of exploratory queries and summarizes which sensors
   experience cold-air drainage, and how strongly (canyon-bottom sensors
   should dominate);
5. prints an ASCII rendition of one day of data with its segments and a
   search hit — the paper's Figure 1.

Run with::

    python examples/cad_exploration.py
"""

from repro import DropQuery, SegDiffIndex, witness_event
from repro.datagen import CADConfig, CADTransectGenerator, robust_loess

HOUR = 3600.0

EXPLORATORY_QUERIES = [
    ("classic CAD: 3 C / 1 h", 1 * HOUR, -3.0),
    ("fast drainage: 2 C / 30 min", 0.5 * HOUR, -2.0),
    ("severe events: 6 C / 2 h", 2 * HOUR, -6.0),
]


def build_indexes(n_sensors: int = 9, days: int = 7):
    cfg = CADConfig(n_sensors=n_sensors, days=days, seed=77)
    gen = CADTransectGenerator(cfg)
    indexes = {}
    for i, (name, raw) in enumerate(gen.generate_all().items()):
        smooth = robust_loess(raw, span=9, iterations=2)
        indexes[name] = (
            gen.depth_factor(i),
            smooth,
            SegDiffIndex.build(smooth, epsilon=0.2, window=8 * HOUR),
        )
    return indexes


def ascii_figure1(series, index, pair, width=72, height=12) -> str:
    """Figure 1: one day of data, its segments, and a search result."""
    t0, t1 = pair.t_d - 4 * HOUR, pair.t_a + 4 * HOUR
    t0 = max(t0, series.t_start)
    t1 = min(t1, series.t_end)
    window = series.slice_time(t0, t1)
    lo, hi = window.values.min(), window.values.max()
    rows = [[" "] * width for _ in range(height)]

    def plot(t, v, char):
        x = int((t - t0) / (t1 - t0) * (width - 1))
        y = int((v - lo) / (hi - lo + 1e-9) * (height - 1))
        rows[height - 1 - y][x] = char

    for t, v in zip(window.times, window.values):
        plot(t, v, ".")
    approx = index.approximation()
    for seg in index.segments:
        if seg.t_end < t0 or seg.t_start > t1:
            continue
        plot(max(seg.t_start, t0), approx(max(seg.t_start, t0)), "o")
        plot(min(seg.t_end, t1), approx(min(seg.t_end, t1)), "o")
    for boundary in pair.as_tuple():
        x = int((boundary - t0) / (t1 - t0) * (width - 1))
        for row in rows:
            if row[x] == " ":
                row[x] = "|"
    return "\n".join("".join(r) for r in rows)


def main() -> None:
    print("Building per-sensor indexes (9 sensors, 7 days) ...")
    indexes = build_indexes()

    for label, t_thr, v_thr in EXPLORATORY_QUERIES:
        print(f"\n=== {label} ===")
        print(f"{'sensor':>8}  {'depth':>6}  {'hits':>5}  deepest witnessed drop")
        for name, (depth, series, index) in sorted(indexes.items()):
            pairs = index.search_drops(t_thr, v_thr)
            deepest = ""
            if pairs:
                query = DropQuery(t_thr, v_thr)
                events = [
                    witness_event(p, series, query) for p in pairs[:50]
                ]
                dv = min(e.dv for e in events if e is not None)
                deepest = f"{dv:+.1f} C"
            print(f"{name:>8}  {depth:6.2f}  {len(pairs):5d}  {deepest}")

    # Figure 1: plot the first hit of the classic query on the deepest sensor
    name, (depth, series, index) = max(
        indexes.items(), key=lambda kv: kv[1][0]
    )
    pairs = index.search_drops(1 * HOUR, -3.0)
    if pairs:
        print(f"\nFigure 1 (sensor {name}): data (.), segment ends (o), "
              "search-result boundaries (|)")
        print(ascii_figure1(series, index, pairs[0]))

    for _depth, _series, index in indexes.values():
        index.close()


if __name__ == "__main__":
    main()
